"""Tests for the unified query-plan IR (``repro.plan``) — ISSUE 5.

The load-bearing property is *semantic transparency*: planned execution
(conjunct reordering, short-circuit AND, statistics-based shard skips,
stats-deferred lattice atoms) must return exactly what the pre-planner
oracle paths return, on every table shape the paper's workload can produce —
all-missing columns, single-value columns, NaN histogram boundaries, empty
WHERE clauses included.  The oracle stays reachable through
``repro.plan.oracle_mode``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CauSumX, CauSumXConfig, summary_to_dict
from repro.dataframe import MaskCache, Op, Pattern, Predicate, Table
from repro.datasets import load_dataset
from repro.mining.lattice import PatternLattice
from repro.mining.treatments import TreatmentMinerConfig
from repro.plan import (
    CategoricalColumnStats,
    NumericColumnStats,
    lower_query,
    merge_column_stats,
    oracle_mode,
    plan_scan,
    planned_select,
    planned_select_with_plan,
    planner_enabled,
    stats_from_dict,
    stats_to_dict,
    table_stats,
)
from repro.service import ExplanationEngine
from repro.service.server import handle_request
from repro.sql import AggregateView, parse_query, query_fingerprint
from repro.storage import DatasetStore, StoredDataset


@pytest.fixture
def store(tmp_path):
    return DatasetStore.init(tmp_path / "store")


def _skewed_table(n: int = 2000, seed: int = 0) -> Table:
    """Columns with very different selectivities under the test predicates."""
    rng = np.random.default_rng(seed)
    return Table.from_columns({
        "broad": [["x", "y"][i] for i in rng.integers(0, 2, n)],
        "narrow": [f"v{i}" for i in rng.integers(0, 50, n)],
        "num": np.where(rng.random(n) < 0.1, np.nan,
                        rng.normal(0, 10, n)),
    }, name="skewed")


# ---------------------------------------------------------------------- IR


class TestLogicalPlan:
    def test_lowering_structure(self):
        query = parse_query("SELECT b, a, AVG(y) FROM T "
                            "WHERE c = 'x' AND d > 3 GROUP BY b, a")
        plan = lower_query(query)
        assert plan.group_by == ("a", "b")          # canonical: sorted
        assert plan.average == "y"
        assert plan.table_name == "T"
        assert [p.attribute for p in plan.conjuncts] == ["c", "d"]
        rendered = plan.render()
        assert "Explain" in rendered and "GroupBy" in rendered
        assert "Filter" in rendered and "Scan(T)" in rendered

    def test_equivalent_spellings_share_a_plan(self):
        a = parse_query("SELECT g, h, AVG(y) FROM T "
                        "WHERE x = 1 AND z = 'u' GROUP BY g, h")
        b = parse_query("SELECT h, g, AVG(y) FROM T "
                        "WHERE z = 'u' AND x = 1.0 GROUP BY h, g")
        assert lower_query(a) == lower_query(b)
        assert lower_query(a).fingerprint == lower_query(b).fingerprint

    def test_fingerprint_is_the_query_fingerprint(self):
        query = parse_query("SELECT g, AVG(y) FROM T WHERE x > 2 GROUP BY g")
        assert lower_query(query).fingerprint == query_fingerprint(query)

    def test_fingerprint_distinguishes_filters(self):
        base = "SELECT g, AVG(y) FROM T {} GROUP BY g"
        plans = {lower_query(parse_query(base.format(w))).fingerprint
                 for w in ("", "WHERE x = 1", "WHERE x = '1'", "WHERE x > 1")}
        assert len(plans) == 4

    def test_where_key_hashable_and_type_aware(self):
        one = lower_query(parse_query(
            "SELECT g, AVG(y) FROM T WHERE x = 1 GROUP BY g"))
        other = lower_query(parse_query(
            "SELECT g, AVG(y) FROM T WHERE x = '1' GROUP BY g"))
        assert hash(one.where_key) != hash(other.where_key) or \
            one.where_key != other.where_key


# ---------------------------------------------------------------------- statistics


class TestColumnStats:
    def test_numeric_histogram_excludes_missing(self):
        stats = NumericColumnStats.from_values(
            np.array([1.0, 2.0, np.nan, 3.0, np.nan]))
        assert stats.n == 5 and stats.n_missing == 2
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert sum(stats.counts) == 3

    def test_all_missing_numeric(self):
        stats = NumericColumnStats.from_values(np.array([np.nan, np.nan]))
        assert stats.minimum is None
        assert stats.selectivity(Op.LE, 10.0) == 0.0

    def test_single_value_column_estimates_high(self):
        stats = NumericColumnStats.from_values(np.full(100, 7.0))
        assert stats.selectivity(Op.EQ, 7.0) == pytest.approx(1.0)
        assert stats.selectivity(Op.EQ, 8.0) == 0.0
        assert stats.selectivity(Op.GE, 7.0) == pytest.approx(1.0)

    def test_selectivity_monotone_and_bounded(self):
        rng = np.random.default_rng(3)
        stats = NumericColumnStats.from_values(rng.normal(0, 1, 5000))
        previous = 0.0
        for x in np.linspace(-4, 4, 30):
            sel = stats.selectivity(Op.LE, float(x))
            assert 0.0 <= sel <= 1.0
            assert sel >= previous - 1e-12
            previous = sel

    def test_nan_target_matches_nothing(self):
        stats = NumericColumnStats.from_values(np.arange(10.0))
        assert stats.selectivity(Op.LE, float("nan")) == 0.0

    def test_categorical_full_counts_are_exact(self):
        codes = np.array([0, 0, 1, 2, 2, 2, -1], dtype=np.int32)
        stats = CategoricalColumnStats.from_codes(codes)
        assert stats.exact and stats.n_missing == 1
        assert stats.exact_rows_for_code(2) == 3
        assert stats.exact_rows_for_code(5) == 0   # absent code: provably zero

    def test_categorical_top_k_keeps_other_mass(self):
        codes = np.repeat(np.arange(10, dtype=np.int32), 5)
        stats = CategoricalColumnStats.from_codes(codes, top_k=3)
        assert not stats.exact
        assert len(stats.counts) == 3 and stats.other == 35
        assert stats.exact_rows_for_code(9) is None  # not provable any more

    def test_manifest_codec_round_trip(self):
        numeric = NumericColumnStats.from_values(np.array([1.0, 4.0, 9.0]))
        cat = CategoricalColumnStats.from_codes(
            np.array([0, 1, 1, -1], dtype=np.int32))
        for stats in (numeric, cat):
            assert stats_from_dict(stats_to_dict(stats)) == stats
        assert stats_from_dict(None) is None
        assert stats_from_dict({}) is None

    def test_merge_matches_combined_build(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(0, 1, 400), rng.normal(3, 1, 300)
        merged = merge_column_stats([NumericColumnStats.from_values(a),
                                     NumericColumnStats.from_values(b)])
        combined = NumericColumnStats.from_values(np.concatenate([a, b]))
        assert merged.n == combined.n and merged.minimum == combined.minimum
        for x in (-1.0, 0.5, 2.0, 3.5):
            assert merged.selectivity(Op.LE, x) == pytest.approx(
                combined.selectivity(Op.LE, x), abs=0.05)

    def test_shard_stats_may_match_is_conservative(self):
        codes = np.array([0, 0, 1, -1], dtype=np.int32)
        spec = stats_to_dict(CategoricalColumnStats.from_codes(codes))
        from repro.plan import shard_stats_may_match

        vocab = ["x", "y", "z"]
        assert shard_stats_may_match(spec, Predicate("c", Op.EQ, "x"), vocab)
        assert not shard_stats_may_match(spec, Predicate("c", Op.EQ, "z"),
                                         vocab)  # count provably zero
        assert not shard_stats_may_match(spec, Predicate("c", Op.EQ, "nope"),
                                         vocab)  # absent from the vocabulary
        assert shard_stats_may_match(None, Predicate("c", Op.EQ, "z"), vocab)
        assert shard_stats_may_match({}, Predicate("c", Op.EQ, "z"), vocab)

    def test_legacy_manifest_estimates_conservatively_without_decoding(
            self, store):
        table = _skewed_table(n=400, seed=9)
        dataset = store.import_table("legacy", table, shard_rows=100)
        # Simulate a pre-planner manifest: strip the committed statistics.
        for shard in dataset.manifest.shards:
            shard.column_stats = {}
        loaded = dataset.load_table()
        stats = table_stats(loaded)
        pred = Predicate("narrow", Op.EQ, "v7")
        assert stats.column("narrow") is None
        assert stats.selectivity(pred) == 1.0      # conservative, and...
        assert not any(column.materialized         # ...no shard was decoded
                       for column in loaded.columns())
        with oracle_mode():
            expected = dataset.load_table().select(Pattern([pred]))
        assert loaded.select(Pattern([pred])) == expected

    def test_exact_support_from_table_stats(self):
        table = Table.from_columns({"c": ["a"] * 7 + ["b"] * 3 + [None]})
        stats = table_stats(table)
        assert stats.exact_support(Predicate("c", Op.EQ, "a")) == 7
        assert stats.exact_support(Predicate("c", Op.NE, "a")) == 3
        assert stats.exact_support(Predicate("c", Op.EQ, "zz")) == 0
        # Missing rows satisfy neither EQ nor NE.
        assert stats.exact_support(Predicate("c", Op.NE, "zz")) == 10


# ---------------------------------------------------------------------- planner


class TestPlanner:
    def test_most_selective_cheap_predicate_first(self):
        table = _skewed_table()
        pattern = Pattern.of(("broad", "==", "x"), ("narrow", "==", "v7"),
                             ("num", "<=", 25.0))
        plan = plan_scan(table, pattern)
        assert plan.reordered
        assert plan.conjuncts[0].predicate.attribute == "narrow"
        ranks = [c.rank for c in plan.conjuncts]
        assert ranks == sorted(ranks)

    def test_planning_is_deterministic(self):
        table = _skewed_table()
        pattern = Pattern.of(("broad", "==", "x"), ("num", ">", 0.0))
        first = [repr(c.predicate) for c in plan_scan(table, pattern).conjuncts]
        second = [repr(c.predicate) for c in plan_scan(table, pattern).conjuncts]
        assert first == second

    def test_executor_records_actuals(self):
        table = _skewed_table()
        pattern = Pattern.of(("broad", "==", "x"), ("narrow", "==", "v7"))
        _, plan = planned_select_with_plan(table, pattern)
        for conjunct in plan.conjuncts:
            assert conjunct.actual_selectivity is not None
            assert 0.0 <= conjunct.actual_selectivity <= 1.0
        assert plan.rows_in == table.n_rows
        assert plan.rows_out == int(pattern.evaluate(table).sum())


# ---------------------------------------------------------------------- planned == oracle


def _random_table(rng, n: int) -> Table:
    cats = ["a", "b", "c", None]
    return Table.from_columns({
        "cat": [cats[i] for i in rng.integers(0, len(cats), n)],
        "num": np.where(rng.random(n) < 0.25, np.nan,
                        rng.integers(-4, 5, n).astype(float)),
        "single": ["only"] * n,
        "allmiss": [None] * n,
    }, name="random")


def _random_pattern(data, rng, table) -> Pattern:
    predicates = []
    for _ in range(data.draw(st.integers(0, 3), label="n_predicates")):
        kind = data.draw(st.sampled_from(
            ["cat", "num", "single", "allmiss", "num_boundary"]))
        if kind == "cat":
            predicates.append(Predicate(
                "cat", data.draw(st.sampled_from([Op.EQ, Op.NE])),
                data.draw(st.sampled_from(["a", "b", "c", "zz"]))))
        elif kind == "single":
            predicates.append(Predicate(
                "single", data.draw(st.sampled_from([Op.EQ, Op.NE])),
                data.draw(st.sampled_from(["only", "other"]))))
        elif kind == "allmiss":
            predicates.append(Predicate(
                "allmiss", data.draw(st.sampled_from(list(Op))), "a"))
        else:
            column = table.column("num")
            # An all-NaN draw makes the column categorical (no type info);
            # numeric targets still parity-test fine against it.
            values = column.values if column.numeric else np.array([])
            present = values[~np.isnan(values)] if values.size else values
            if kind == "num_boundary" and present.size:
                # Exact data values: histogram bucket edges, min, and max.
                target = float(data.draw(st.sampled_from(
                    sorted({float(v) for v in present}))))
            else:
                target = data.draw(st.sampled_from(
                    [-4.5, -1.0, 0.0, 2.5, 4.0, float("nan")]))
            predicates.append(Predicate(
                "num", data.draw(st.sampled_from(list(Op))), target))
    return Pattern(predicates)


class TestPlannedEqualsOracle:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_planned_select_equals_oracle(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        table = _random_table(rng, data.draw(st.integers(1, 80)))
        pattern = _random_pattern(data, rng, table)
        planned = planned_select(table, pattern)
        with oracle_mode():
            oracle = table.select(pattern)
        assert planned == oracle

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_mask_cache_routing_equals_oracle(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        table = _random_table(rng, data.draw(st.integers(1, 60)))
        pattern = _random_pattern(data, rng, table)
        cache = MaskCache(table)
        first = planned_select(table, pattern, mask_cache=cache)
        second = planned_select(table, pattern, mask_cache=cache)  # warm
        with oracle_mode():
            oracle = table.select(pattern)
        assert first == oracle and second == oracle

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_sharded_planned_select_equals_oracle(self, data):
        import tempfile

        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        table = _random_table(rng, data.draw(st.integers(5, 80)))
        pattern = _random_pattern(data, rng, table)
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(
                f"{tmp}/d", "d", table,
                shard_rows=data.draw(st.integers(3, 30)))
            planned = dataset.load_table().select(pattern)
            with oracle_mode():
                oracle = dataset.load_table().select(pattern)
            assert planned == oracle

    def test_aggregate_view_equals_oracle_view(self):
        bundle = load_dataset("stackoverflow", n=800, seed=0)
        query = parse_query(
            "SELECT Country, AVG(Salary) FROM SO "
            "WHERE Gender = 'Male' AND Continent != 'Asia' GROUP BY Country")
        planned = AggregateView(bundle.table, query)
        with oracle_mode():
            oracle = AggregateView(bundle.table, query)
        assert planned.groups == oracle.groups
        assert planned.table == oracle.table
        assert planned.scan_plan is not None and oracle.scan_plan is None

    def test_stackoverflow_summary_byte_identical_to_oracle(self):
        bundle = load_dataset("stackoverflow", n=600, seed=0)
        config = CauSumXConfig(
            k=3, theta=0.6, sample_size=None, min_group_size=10,
            treatment=TreatmentMinerConfig(max_levels=1, min_group_size=10,
                                           max_values_per_attribute=6))
        query = ("SELECT Country, AVG(Salary) FROM SO "
                 "WHERE Continent != 'Oceania' GROUP BY Country")

        def run():
            return CauSumX(bundle.table, bundle.dag, config).explain(
                query, grouping_attributes=bundle.grouping_attributes,
                treatment_attributes=bundle.treatment_attributes)

        planned = summary_to_dict(run())
        with oracle_mode():
            oracle = summary_to_dict(run())
        planned.pop("timings", None), oracle.pop("timings", None)
        assert planned == oracle


# ---------------------------------------------------------------------- lattice


class TestLatticeStatsDeferral:
    def _table(self) -> Table:
        rng = np.random.default_rng(7)
        n = 300
        return Table.from_columns({
            "t": ["rare" if i % 30 == 0 else "hi" for i in range(n)],
            "many": rng.normal(0, 1, n),
            "y": rng.normal(0, 1, n),
        })

    def test_atoms_identical_to_oracle(self):
        table = self._table()
        kwargs = dict(max_values_per_attribute=5, numeric_bins=3,
                      min_support=15)
        planned = PatternLattice(table, ["t", "many"],
                                 mask_cache=MaskCache(table),
                                 **kwargs).atomic_predicates()
        with oracle_mode():
            oracle = PatternLattice(table, ["t", "many"],
                                    mask_cache=MaskCache(table),
                                    **kwargs).atomic_predicates()
        assert planned == oracle
        assert all(p.evaluate(table).sum() >= 15 for p in planned)

    def test_low_support_atoms_deferred_without_mask_evaluation(self):
        table = self._table()
        cache = MaskCache(table)
        atoms = PatternLattice(table, ["t"], mask_cache=cache,
                               min_support=15).atomic_predicates()
        assert {p.value for p in atoms} == {"hi"}   # "rare" deferred
        assert len(cache) == 0                      # and no mask was built


# ---------------------------------------------------------------------- staleness


class TestStatsFreshnessAfterAppend:
    def test_appended_shard_carries_fresh_statistics(self, store):
        table = Table.from_columns({
            "a": ["hot"] * 90 + ["cold"] * 10,
            "b": [f"u{i % 4}" for i in range(100)],
            "y": [float(i) for i in range(100)],
        })
        dataset = store.import_table("d", table, shard_rows=50)
        appended = Table.from_columns({
            "a": ["cold"] * 200,
            "b": ["u9"] * 200,
            "y": [0.0] * 200,
        })
        dataset.append(appended)
        shard = dataset.manifest.shards[-1]
        assert set(shard.column_stats) == {"a", "b", "y"}
        merged = dataset.load_table().plan_column_stats("a")
        # Merged estimates include the appended distribution: 'cold' went
        # from 10/100 rows to 210/300.
        loaded = dataset.load_table()
        code = loaded.column("a").vocab_code("cold")
        assert merged.counts[code] == 210

    def test_plan_order_adapts_to_distribution_shift(self, store):
        # Initially: a='rare' is highly selective, b='common' is not.
        table = Table.from_columns({
            "a": ["rare"] * 5 + ["base"] * 495,
            "b": ["common"] * 400 + ["other"] * 100,
            "y": [float(i) for i in range(500)],
        })
        dataset = store.import_table("shift", table, shard_rows=100)
        pattern = Pattern.of(("a", "==", "rare"), ("b", "==", "common"))
        loaded = dataset.load_table()
        before = plan_scan(loaded, pattern, stats=table_stats(loaded))
        assert before.conjuncts[0].predicate.attribute == "a"

        # Distribution shift: 'rare' floods in, 'common' disappears.
        dataset.append(Table.from_columns({
            "a": ["rare"] * 2000,
            "b": ["other"] * 2000,
            "y": [0.0] * 2000,
        }))
        dataset.reload()
        reloaded = dataset.load_table()
        after = plan_scan(reloaded, pattern, stats=table_stats(reloaded))
        assert after.conjuncts[0].predicate.attribute == "b"
        # And the planned scan still matches the oracle on the new data.
        with oracle_mode():
            oracle = dataset.load_table().select(pattern)
        assert reloaded.select(pattern) == oracle

    def test_engine_append_refreshes_in_memory_estimates(self):
        engine = ExplanationEngine(max_workers=1)
        table = Table.from_columns({
            "g": [f"g{i % 3}" for i in range(300)],
            "a": ["rare"] * 3 + ["base"] * 297,
            "y": [float(i % 7) for i in range(300)],
        })
        engine.register_dataset("d", table)
        sql = "SELECT g, AVG(y) FROM d WHERE a = 'rare' GROUP BY g"
        first = engine.explain_plan("d", sql)
        est_before = first["scan"]["conjuncts"][0]["estimated_selectivity"]
        engine.append_rows("d", Table.from_columns({
            "g": ["g0"] * 700, "a": ["rare"] * 700, "y": [1.0] * 700}))
        second = engine.explain_plan("d", sql)
        est_after = second["scan"]["conjuncts"][0]["estimated_selectivity"]
        assert second["version"] == first["version"] + 1
        assert est_after > est_before  # estimates rebuilt on the new version


# ---------------------------------------------------------------------- compaction


class TestCompaction:
    def test_merges_undersized_shards_and_preserves_rows(self, store):
        table = _skewed_table(n=900, seed=2)
        dataset = store.import_table("c", table, shard_rows=90)
        assert len(dataset.manifest.shards) == 10
        result = dataset.compact(shard_rows=450)
        assert result["shards_after"] == 2
        assert result["version"] == 1
        dataset.verify()  # fresh fingerprints hold
        reloaded = dataset.load_table()
        assert reloaded.n_rows == table.n_rows
        assert reloaded.select(Pattern()) == table.select(Pattern())
        for shard in dataset.manifest.shards:
            assert shard.zone_maps and shard.column_stats

    def test_right_sized_shards_left_untouched(self, store):
        table = _skewed_table(n=600, seed=3)
        dataset = store.import_table("c", table, shard_rows=200)
        fingerprints = [s.fingerprint for s in dataset.manifest.shards]
        result = dataset.compact()  # every shard is already at the target
        assert result["rewritten"] == 0
        assert [s.fingerprint for s in dataset.manifest.shards] == fingerprints
        assert result["version"] == 0  # no-op: no version churn

    def test_cluster_by_improves_pruning(self, store):
        rng = np.random.default_rng(4)
        n = 2000
        table = Table.from_columns({
            "tenant": [f"t{i}" for i in rng.integers(0, 8, n)],
            "y": rng.normal(0, 1, n),
        })
        dataset = store.import_table("c", table, shard_rows=250)
        pattern = Pattern.of(("tenant", "==", "t3"))
        unclustered = dataset.load_table()
        with oracle_mode():
            expected = unclustered.select(pattern)
        result = dataset.compact(cluster_by="tenant", shard_rows=250)
        assert result["cluster_by"] == "tenant"
        dataset.reload()
        clustered = dataset.load_table()
        selected = clustered.select(pattern)
        assert selected.n_rows == expected.n_rows
        assert sorted(selected.column("y").values.tolist()) == \
            sorted(expected.column("y").values.tolist())
        stats = clustered.scan_stats()
        assert stats["shards_skipped"] >= 5  # zone maps now prove most shards

    def test_cluster_by_unknown_attribute_rejected(self, store):
        dataset = store.import_table("c", _skewed_table(n=50), shard_rows=10)
        from repro.storage import StorageError

        with pytest.raises(StorageError):
            dataset.compact(cluster_by="nope")

    def test_non_positive_sizes_rejected(self, store):
        dataset = store.import_table("c", _skewed_table(n=50), shard_rows=10)
        from repro.storage import StorageError

        with pytest.raises(StorageError, match="shard_rows"):
            dataset.compact(shard_rows=0)
        with pytest.raises(StorageError, match="min_rows"):
            dataset.compact(min_rows=-1)

    def test_append_after_compact_never_reuses_shard_names(self, store):
        table = _skewed_table(n=400, seed=5)
        dataset = store.import_table("c", table, shard_rows=50)
        dataset.compact(shard_rows=400)
        batch = _skewed_table(n=40, seed=6)
        dataset.append(batch)
        names = [s.shard_id for s in dataset.manifest.shards]
        assert len(names) == len(set(names))
        dataset.verify()
        assert dataset.load_table().n_rows == 440

    def test_store_level_compact_and_cli(self, store, capsys):
        from repro.cli import main

        table = _skewed_table(n=300, seed=7)
        store.import_table("c", table, shard_rows=30)
        code = main(["store", "compact", str(store.root), "c",
                     "--shard-rows", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compacted 'c'" in out and "-> 2" in out


# ---------------------------------------------------------------------- engine & ops


class TestEngineIntegration:
    @pytest.fixture
    def engine(self):
        engine = ExplanationEngine(max_workers=1)
        bundle = load_dataset("stackoverflow", n=400, seed=0)
        engine.register_dataset("so", bundle.table, dag=bundle.dag,
                                grouping_attributes=bundle.grouping_attributes,
                                treatment_attributes=bundle.treatment_attributes)
        return engine

    def test_explain_plan_reports_estimates_and_actuals(self, engine):
        report = engine.explain_plan(
            "so", "SELECT Country, AVG(Salary) FROM SO "
                  "WHERE Gender = 'Male' AND Continent != 'Asia' "
                  "GROUP BY Country")
        assert report["planner_enabled"] is planner_enabled()
        assert "Scan(" in report["logical_plan"]
        conjuncts = report["scan"]["conjuncts"]
        assert len(conjuncts) == 2
        for conjunct in conjuncts:
            assert 0.0 <= conjunct["estimated_selectivity"] <= 1.0
            assert conjunct["actual_selectivity"] is not None
        assert report["rows"]["filtered"] <= report["rows"]["table"]

    def test_explain_plan_reexecutes_views_cached_under_oracle_mode(
            self, engine):
        sql = ("SELECT Country, AVG(Salary) FROM SO "
               "WHERE Gender = 'Male' GROUP BY Country")
        with oracle_mode():
            engine.explain_plan("so", sql)  # caches a plan-less oracle view
        report = engine.explain_plan("so", sql)
        assert report["planner_enabled"] is True
        assert report["scan"] is not None  # re-executed, not served stale
        assert report["scan"]["conjuncts"][0]["actual_selectivity"] is not None

    def test_explain_plan_op_over_the_protocol(self, engine):
        response = handle_request(
            engine, "so",
            '{"op": "explain_plan", "query": "SELECT Country, AVG(Salary) '
            "FROM SO WHERE Gender = 'Male' GROUP BY Country\", \"id\": 4}")
        assert response["ok"] and response["id"] == 4
        assert response["result"]["scan"]["conjuncts"]

    def test_stats_surface_planner_section(self, engine):
        engine.explain_plan(
            "so", "SELECT Country, AVG(Salary) FROM SO "
                  "WHERE Gender = 'Male' GROUP BY Country")
        planner = engine.stats()["planner"]
        assert planner["enabled"] is True
        assert planner["plans"] >= 1
        assert "shards_zone_map_skipped" in planner
        assert "so" in planner["where_mask_caches"]

    def test_where_mask_cache_shared_across_queries(self, engine):
        for group_by in ("Country", "Continent"):
            engine.explain_plan(
                "so", f"SELECT {group_by}, AVG(Salary) FROM SO "
                      "WHERE Gender = 'Male' GROUP BY " + group_by)
        caches = engine.stats()["planner"]["where_mask_caches"]
        assert caches["so"]["hits"] >= 1  # second query reused the mask

    def test_plan_fingerprints_dedupe_spellings(self, engine):
        spellings = [
            "SELECT Country, AVG(Salary) FROM SO "
            "WHERE Gender = 'Male' AND Student = 'No' GROUP BY Country",
            "SELECT Country, AVG(Salary) FROM SO "
            "WHERE Student = 'No' AND Gender = 'Male' GROUP BY Country",
        ]
        first = engine.explain("so", spellings[0])
        second = engine.explain("so", spellings[1])
        assert first is second            # one cached summary for both
        assert engine.computations == 1


class TestPlanCLI:
    def test_plan_command_prints_schedule(self, capsys):
        from repro.cli import main

        code = main(["plan", "--dataset", "stackoverflow", "--n", "300",
                     "--query",
                     "SELECT Country, AVG(Salary) FROM SO "
                     "WHERE Gender = 'Male' AND Continent != 'Asia' "
                     "GROUP BY Country"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Explain" in out and "scan (" in out and "est=" in out

    def test_plan_command_against_store(self, store, capsys):
        from repro.cli import main

        store.import_table("t", _skewed_table(n=200, seed=8), shard_rows=50)
        code = main(["plan", "--store", str(store.root),
                     "--query", "SELECT broad, AVG(num) FROM t "
                                "WHERE narrow = 'v7' GROUP BY broad"])
        assert code == 0
        assert "shards:" in capsys.readouterr().out
