"""Unit tests for the columnar Table."""

import numpy as np
import pytest

from repro.dataframe import Column, Pattern, Table


class TestConstruction:
    def test_from_rows(self, simple_table):
        assert simple_table.n_rows == 6
        assert simple_table.n_cols == 7
        assert "Country" in simple_table

    def test_from_columns_mapping(self):
        table = Table.from_columns({"a": [1, 2], "b": ["x", "y"]})
        assert table.attributes == ("a", "b")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table([Column("a", [1, 2]), Column("b", [1])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Table([Column("a", [1]), Column("a", [2])])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_from_rows_empty_rejected(self):
        with pytest.raises(ValueError):
            Table.from_rows([])

    def test_add_column(self):
        table = Table.from_columns({"a": [1, 2]})
        table.add_column(Column("b", ["x", "y"]))
        assert "b" in table
        with pytest.raises(ValueError):
            table.add_column(Column("b", ["x", "y"]))
        with pytest.raises(ValueError):
            table.add_column(Column("c", ["only-one"]))


class TestAccessors:
    def test_column_lookup_and_error(self, simple_table):
        assert simple_table.column("Salary").numeric
        with pytest.raises(KeyError):
            simple_table.column("Missing")

    def test_domain(self, simple_table):
        assert simple_table.domain("Country") == ["China", "India", "US"]

    def test_row_and_iter_rows(self, simple_table):
        row = simple_table.row(0)
        assert row["Country"] == "US"
        assert len(list(simple_table.iter_rows())) == 6

    def test_head(self, simple_table):
        assert len(simple_table.head(2)) == 2

    def test_is_numeric(self, simple_table):
        assert simple_table.is_numeric("Age")
        assert not simple_table.is_numeric("Country")


class TestRelationalOps:
    def test_select_with_pattern(self, simple_table):
        sub = simple_table.select(Pattern.of(("Continent", "=", "Asia")))
        assert sub.n_rows == 4
        assert set(sub.column("Country").values) == {"India", "China"}

    def test_select_with_mask(self, simple_table):
        mask = np.zeros(6, dtype=bool)
        mask[0] = True
        assert simple_table.select(mask).n_rows == 1

    def test_select_wrong_mask_shape(self, simple_table):
        with pytest.raises(ValueError):
            simple_table.select(np.ones(3, dtype=bool))

    def test_project_and_drop(self, simple_table):
        projected = simple_table.project(["Country", "Salary"])
        assert projected.attributes == ("Country", "Salary")
        dropped = simple_table.drop(["Age"])
        assert "Age" not in dropped.attributes

    def test_take_preserves_order(self, simple_table):
        taken = simple_table.take([2, 0])
        assert taken.column("Country").values[0] == "India"
        assert taken.column("Country").values[1] == "US"

    def test_concat(self, simple_table):
        doubled = simple_table.concat(simple_table)
        assert doubled.n_rows == 12

    def test_concat_schema_mismatch(self, simple_table):
        other = simple_table.project(["Country", "Salary"])
        with pytest.raises(ValueError):
            simple_table.concat(other)

    def test_concat_merges_vocabularies(self):
        big = Table.from_columns({"c": ["a", "b", "c", "a", None]})
        small = Table.from_columns({"c": ["b", "a"]})
        merged = big.concat(small).column("c")
        # Small side ⊆ big side: the big side's vocabulary and codes survive.
        assert merged.vocab == big.column("c").vocab
        assert np.array_equal(merged.codes[:5], big.column("c").codes)
        assert list(merged.values) == ["a", "b", "c", "a", None, "b", "a"]

    def test_concat_with_new_values_matches_fresh_factorization(self):
        left = Table.from_columns({"c": ["m", "z", None, "m"]})
        right = Table.from_columns({"c": ["a", "z", "q"]})
        merged = left.concat(right).column("c")
        fresh = Column("c", ["m", "z", None, "m", "a", "z", "q"])
        assert merged.vocab == fresh.vocab
        assert np.array_equal(merged.codes, fresh.codes)

    def test_concat_mixed_kinds_falls_back_to_categorical(self):
        numeric = Table.from_columns({"c": [1.0, 2.0]})
        categorical = Table.from_columns({"c": ["x", "y"]})
        merged = numeric.concat(categorical).column("c")
        assert not merged.numeric
        assert list(merged.values) == [1.0, 2.0, "x", "y"]

    def test_concat_all_missing_side_adopts_other_kind(self):
        numeric = Table.from_columns({"c": [1.0, 2.0]})
        empty = Table.from_columns({"c": [None, None]})
        as_suffix = numeric.concat(empty).column("c")
        assert as_suffix.numeric
        assert np.isnan(as_suffix.values[2]) and np.isnan(as_suffix.values[3])
        as_prefix = empty.concat(numeric).column("c")
        assert as_prefix.numeric and np.isnan(as_prefix.values[0])
        categorical = Table.from_columns({"c": ["x", "y"]})
        cat_merged = categorical.concat(empty).column("c")
        assert not cat_merged.numeric
        assert list(cat_merged.values) == ["x", "y", None, None]

    def test_concat_numeric_preserves_nan(self):
        a = Table.from_columns({"v": [1.0, float("nan")]})
        b = Table.from_columns({"v": [3.0]})
        values = a.concat(b).column("v").values
        assert values[0] == 1.0 and np.isnan(values[1]) and values[2] == 3.0

    def test_equality(self, simple_table):
        assert simple_table == simple_table.take(range(simple_table.n_rows))
        assert simple_table != simple_table.take([0, 1, 2])


class TestAggregation:
    def test_groupby_avg(self, simple_table):
        results = simple_table.groupby_avg(["Country"], "Salary")
        as_dict = {key[0]: avg for key, avg, _ in results}
        assert as_dict["US"] == pytest.approx((180.0 + 83.0) / 2)
        assert as_dict["India"] == pytest.approx((24.0 + 7.5) / 2)

    def test_groupby_avg_with_where(self, simple_table):
        results = simple_table.groupby_avg(["Continent"], "Salary",
                                           where=Pattern.of(("Gender", "=", "Male")))
        as_dict = {key[0]: count for key, _, count in results}
        assert as_dict == {"N. America": 1, "Asia": 2}

    def test_groupby_multiple_attributes(self, simple_table):
        results = simple_table.groupby_avg(["Continent", "Gender"], "Salary")
        keys = [key for key, _, _ in results]
        assert ("Asia", "Female") in keys

    def test_group_indices(self, simple_table):
        indices = simple_table.group_indices(["Country"])
        assert sorted(indices[("US",)].tolist()) == [0, 1]

    def test_avg(self, simple_table):
        assert simple_table.avg("Age") == pytest.approx(np.mean([26, 32, 29, 25, 21, 41]))

    def test_avg_non_numeric_raises(self, simple_table):
        with pytest.raises(TypeError):
            simple_table.avg("Country")

    def test_groupby_avg_ignores_missing_outcome(self):
        table = Table.from_columns({"g": ["a", "a"], "y": [1.0, None]})
        results = table.groupby_avg(["g"], "y")
        assert results[0][1] == pytest.approx(1.0)
        assert results[0][2] == 2  # count still includes the missing-outcome row


class TestSampling:
    def test_sample_smaller(self, simple_table):
        assert simple_table.sample(3, seed=0).n_rows == 3

    def test_sample_larger_returns_self(self, simple_table):
        assert simple_table.sample(100) is simple_table

    def test_sample_deterministic_with_seed(self, simple_table):
        a = simple_table.sample(3, seed=42)
        b = simple_table.sample(3, seed=42)
        assert a == b

    def test_shuffle_preserves_multiset(self, simple_table):
        shuffled = simple_table.shuffle(seed=1)
        assert sorted(shuffled.column("Age").values) == sorted(
            simple_table.column("Age").values)

    def test_describe(self, simple_table):
        stats = simple_table.describe()
        assert stats["tuples"] == 6
        assert stats["attributes"] == 7
