"""Unit tests for the baseline explanation methods."""

import numpy as np
import pytest

from repro.baselines import (
    ExplanationTable,
    ExplanationTableG,
    FallingRuleList,
    InterpretableDecisionSets,
    XInsightPairwise,
    binarize_outcome,
)
from repro.mining import mine_grouping_patterns
from repro.sql import AggregateView


@pytest.fixture(scope="module")
def so_view(so_bundle):
    return AggregateView(so_bundle.table, so_bundle.query)


class TestBinarize:
    def test_binarize_around_mean(self, so_bundle):
        table, name = binarize_outcome(so_bundle.table, "Salary")
        assert name == "Salary_high"
        values = set(table.domain(name))
        assert values <= {0.0, 1.0}
        assert 0.0 < np.mean(table.column(name).values) < 1.0

    def test_binarize_with_threshold(self, so_bundle):
        table, name = binarize_outcome(so_bundle.table, "Salary", threshold=1e12)
        assert set(table.domain(name)) == {0.0}


class TestExplanationTable:
    def test_fit_produces_requested_number_of_rules(self, so_bundle):
        model = ExplanationTable(n_patterns=3, max_length=1).fit(
            so_bundle.table, "Salary",
            attributes=["Role", "Education", "Student", "AgeBand"])
        assert 1 <= len(model.rules) <= 3

    def test_rules_have_positive_support(self, so_bundle):
        model = ExplanationTable(n_patterns=3, max_length=1).fit(
            so_bundle.table, "Salary", attributes=["Role", "Student"])
        assert all(rule.support > 0 for rule in model.rules)

    def test_rules_are_distinct(self, so_bundle):
        model = ExplanationTable(n_patterns=4, max_length=1).fit(
            so_bundle.table, "Salary", attributes=["Role", "Education", "Student"])
        patterns = [rule.pattern for rule in model.rules]
        assert len(patterns) == len(set(patterns))

    def test_predict_returns_binary_vector(self, so_bundle):
        model = ExplanationTable(n_patterns=2, max_length=1).fit(
            so_bundle.table, "Salary", attributes=["Role", "Student"])
        predictions = model.predict(so_bundle.table)
        assert predictions.shape == (so_bundle.table.n_rows,)
        assert set(np.unique(predictions)) <= {0.0, 1.0}

    def test_explanation_table_g_per_group(self, so_view, so_bundle):
        groupings = mine_grouping_patterns(so_view, so_bundle.grouping_attributes)
        model = ExplanationTableG(n_patterns=2).fit(
            so_view, groupings[:3], "Salary", attributes=["Role", "Student"])
        assert len(model.tables) >= 1
        assert all(t.rules for t in model.tables.values())


class TestIDS:
    def test_rule_budget_respected(self, so_bundle):
        model = InterpretableDecisionSets(max_rules=3, max_length=1).fit(
            so_bundle.table, "Salary", attributes=["Role", "Education", "Student"])
        assert len(model.rules) <= 3

    def test_accuracy_beats_random_guessing(self, so_bundle):
        model = InterpretableDecisionSets(max_rules=5, max_length=1).fit(
            so_bundle.table, "Salary",
            attributes=["Role", "Education", "Student", "AgeBand", "GDP"])
        assert model.accuracy(so_bundle.table, "Salary") > 0.5

    def test_predictions_binary(self, so_bundle):
        model = InterpretableDecisionSets(max_rules=3, max_length=1).fit(
            so_bundle.table, "Salary", attributes=["Role", "Student"])
        assert set(np.unique(model.predict(so_bundle.table))) <= {0.0, 1.0}


class TestFRL:
    def test_list_is_falling(self, so_bundle):
        model = FallingRuleList(max_rules=5, max_length=1).fit(
            so_bundle.table, "Salary",
            attributes=["Role", "Education", "Student", "GDP"])
        assert model.rules
        assert model.is_falling()

    def test_first_rule_has_highest_probability(self, so_bundle):
        model = FallingRuleList(max_rules=5, max_length=1).fit(
            so_bundle.table, "Salary", attributes=["Role", "Education", "GDP"])
        confidences = [rule.confidence for rule in model.rules]
        assert confidences[0] == max(confidences)

    def test_predict_proba_in_unit_interval(self, so_bundle):
        model = FallingRuleList(max_rules=4, max_length=1).fit(
            so_bundle.table, "Salary", attributes=["Role", "GDP"])
        probabilities = model.predict_proba(so_bundle.table)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0


class TestXInsight:
    def test_pairwise_explanations_grow_quadratically(self, so_view, so_bundle):
        model = XInsightPairwise(dag=so_bundle.dag).fit(
            so_view, ["Role", "Education", "Student"], max_pairs=6)
        assert model.explanation_size() <= 6
        # A summary over all pairs would need m*(m-1)/2 entries; CauSumX needs k.
        assert so_view.m * (so_view.m - 1) // 2 > 5

    def test_explanations_reference_real_groups(self, so_view, so_bundle):
        model = XInsightPairwise(dag=so_bundle.dag).fit(
            so_view, ["Role", "Student"], max_pairs=4)
        keys = set(so_view.group_keys())
        for explanation in model.explanations:
            assert explanation.group_a in keys and explanation.group_b in keys

    def test_top_sorted_by_score(self, so_view, so_bundle):
        model = XInsightPairwise(dag=so_bundle.dag).fit(
            so_view, ["Role", "Student"], max_pairs=6)
        top = model.top(3)
        scores = [e.score for e in top]
        assert scores == sorted(scores, reverse=True)
