"""Unit tests for the Apriori frequent-pattern miner."""

import pytest

from repro.dataframe import Pattern, Table
from repro.mining import apriori


@pytest.fixture
def transactions():
    return Table.from_columns({
        "continent": ["Europe", "Europe", "Europe", "Asia", "Asia", "Asia",
                      "Europe", "Asia"],
        "gdp": ["High", "High", "High", "Low", "Low", "High", "High", "Low"],
        "hdi": ["High", "High", "High", "Medium", "Medium", "High", "High", "Medium"],
    })


class TestApriori:
    def test_singletons_respect_support(self, transactions):
        results = apriori(transactions, ["continent", "gdp"], min_support=0.5)
        patterns = {repr(r.pattern) for r in results}
        assert any("continent == 'Europe'" in p for p in patterns)
        assert any("gdp == 'High'" in p for p in patterns)
        # Asia appears 4/8 = 0.5 so it is kept; Low GDP 3/8 is not.
        assert not any("'Low'" in p for p in patterns)

    def test_support_counts_are_exact(self, transactions):
        results = apriori(transactions, ["continent"], min_support=0.1)
        by_repr = {repr(r.pattern): r for r in results}
        europe = by_repr["continent == 'Europe'"]
        assert europe.support == 4
        assert europe.support_fraction == pytest.approx(0.5)

    def test_pairs_generated_by_join(self, transactions):
        results = apriori(transactions, ["continent", "gdp", "hdi"], min_support=0.4)
        lengths = {len(r.pattern) for r in results}
        assert 2 in lengths
        pair = next(r for r in results if len(r.pattern) == 2
                    and set(r.pattern.attributes) == {"continent", "gdp"})
        assert pair.support == 4  # Europe & High

    def test_anti_monotone_supports(self, transactions):
        results = apriori(transactions, ["continent", "gdp", "hdi"], min_support=0.1)
        by_pattern = {r.pattern: r.support for r in results}
        for pattern, support in by_pattern.items():
            for i in range(len(pattern.predicates)):
                parent = Pattern(pattern.predicates[:i] + pattern.predicates[i + 1:])
                if len(parent) >= 1:
                    assert by_pattern[parent] >= support

    def test_max_length_cap(self, transactions):
        results = apriori(transactions, ["continent", "gdp", "hdi"],
                          min_support=0.1, max_length=1)
        assert all(len(r.pattern) == 1 for r in results)

    def test_max_values_per_attribute(self, transactions):
        results = apriori(transactions, ["continent"], min_support=0.0,
                          max_values_per_attribute=1)
        assert len(results) == 1  # only the most frequent continent kept

    def test_no_conflicting_values_in_one_pattern(self, transactions):
        results = apriori(transactions, ["continent", "gdp", "hdi"], min_support=0.0)
        for r in results:
            attrs = [p.attribute for p in r.pattern]
            assert len(attrs) == len(set(attrs))

    def test_invalid_support_rejected(self, transactions):
        with pytest.raises(ValueError):
            apriori(transactions, ["continent"], min_support=1.5)

    def test_zero_support_keeps_all_values(self, transactions):
        results = apriori(transactions, ["gdp"], min_support=0.0)
        assert {r.pattern.predicates[0].value for r in results} == {"High", "Low"}

    def test_threshold_one_requires_universal_pattern(self, transactions):
        results = apriori(transactions, ["continent", "gdp"], min_support=1.0)
        assert results == []
