"""Integration tests for the experiment drivers (small configurations)."""

import pytest

from repro.core import CauSumXConfig
from repro.datasets import make_synthetic
from repro.experiments import (
    cate_vs_sample_size,
    dag_sensitivity,
    dag_statistics_table,
    grouping_precision_recall,
    kendall_vs_sample_size,
    run_case_study,
    run_variants_comparison,
    runtime_vs_attributes,
    runtime_vs_data_size,
    runtime_vs_treatment_patterns,
    sweep_apriori_threshold,
    sweep_k,
    treatment_precision_recall,
)
from repro.mining.treatments import TreatmentMinerConfig


@pytest.fixture(scope="module")
def tiny_config():
    return CauSumXConfig(
        k=2, theta=0.5, sample_size=None, min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                       significance_level=1.0,
                                       max_values_per_attribute=6),
    )


@pytest.fixture(scope="module")
def tiny_bundle():
    return make_synthetic(n=250, n_grouping=2, n_treatment=2, seed=5)


class TestVariantsExperiment:
    def test_rows_have_expected_fields(self, tiny_bundle, tiny_config):
        rows = run_variants_comparison(tiny_bundle,
                                       variants=("CauSumX", "Greedy-Last-Step"),
                                       config=tiny_config)
        assert len(rows) == 2
        for row in rows:
            assert {"variant", "runtime", "coverage", "total_explainability"} <= set(row)
            assert row["runtime"] > 0

    def test_unknown_variant_rejected(self, tiny_bundle, tiny_config):
        with pytest.raises(KeyError):
            run_variants_comparison(tiny_bundle, variants=("NotAVariant",),
                                    config=tiny_config)


class TestSweeps:
    def test_sweep_k_monotone_objective(self, tiny_bundle, tiny_config):
        rows = sweep_k(tiny_bundle, [1, 3], config=tiny_config, variants=("CauSumX",))
        by_k = {row["k"]: row["total_explainability"] for row in rows}
        assert by_k[3] >= by_k[1] - 1e-9

    def test_sweep_threshold_rows(self, tiny_bundle, tiny_config):
        rows = sweep_apriori_threshold(tiny_bundle, [0.05, 0.4], config=tiny_config)
        assert [row["apriori_threshold"] for row in rows] == [0.05, 0.4]
        assert all(row["n_candidates"] >= 0 for row in rows)


class TestAccuracyExperiment:
    def test_grouping_precision_recall_bounds(self):
        rows = grouping_precision_recall([2, 3], n=200, seed=1)
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0

    def test_treatment_precision_recall_bounds(self):
        rows = treatment_precision_recall([2], n=200, n_grouping_patterns=3, seed=1)
        assert rows
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0


class TestScalabilityExperiment:
    def test_runtime_vs_data_size(self, tiny_bundle, tiny_config):
        rows = runtime_vs_data_size(tiny_bundle, [100, 200], config=tiny_config)
        assert [row["n_tuples"] for row in rows] == [100, 200]
        assert all(row["runtime"] > 0 for row in rows)

    def test_runtime_vs_attributes(self, tiny_bundle, tiny_config):
        rows = runtime_vs_attributes(tiny_bundle, [1, 2], config=tiny_config)
        assert [row["n_attributes"] for row in rows] == [1, 2]

    def test_runtime_vs_treatment_patterns(self, tiny_bundle, tiny_config):
        rows = runtime_vs_treatment_patterns(tiny_bundle, [3, 5], config=tiny_config)
        assert all(row["n_atomic_treatments"] > 0 for row in rows)


class TestSamplingExperiment:
    def test_cate_vs_sample_size(self, tiny_bundle):
        rows = cate_vs_sample_size(tiny_bundle, [100, 250], n_treatments=3, seed=0)
        assert len(rows) == 6
        full = [row for row in rows if row["sample_size"] == 250]
        assert all(row["relative_error"] < 1e-9 or row["relative_error"] != row["relative_error"]
                   for row in full)  # full-size sample reproduces the reference

    def test_kendall_vs_sample_size_increases_with_size(self, tiny_bundle):
        rows = kendall_vs_sample_size(tiny_bundle, [50, 250], n_treatments=8, seed=0)
        by_size = {row["sample_size"]: row["kendall_tau"] for row in rows}
        assert by_size[250] >= by_size[50] - 1e-9
        assert by_size[250] == pytest.approx(1.0)


class TestDagExperiment:
    def test_dag_statistics_table(self, tiny_bundle):
        rows = dag_statistics_table(tiny_bundle, methods=("ground_truth", "PC"))
        assert {row["name"] for row in rows} == {"ground_truth", "PC"}
        assert all(row["edges"] >= 0 for row in rows)

    def test_dag_sensitivity_rows(self, tiny_bundle, tiny_config):
        rows = dag_sensitivity(tiny_bundle, methods=("ground_truth", "No-DAG"),
                               config=tiny_config, n_treatments=6)
        by_dag = {row["dag"]: row for row in rows}
        assert by_dag["ground_truth"]["kendall_tau"] == pytest.approx(1.0)
        assert -1.0 <= by_dag["No-DAG"]["kendall_tau"] <= 1.0


class TestCaseStudies:
    def test_unknown_case_study(self):
        with pytest.raises(KeyError):
            run_case_study("figure99")

    def test_german_case_study_small(self, tiny_config):
        summary, text = run_case_study("figure18_german", n=300, seed=1,
                                       config=tiny_config)
        assert len(summary) >= 1
        assert "effect size" in text
