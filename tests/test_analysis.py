"""Tests for :mod:`repro.analysis` — the lint engine, all six rules, the
CLI exit-code contract, and the runtime lockwatch."""

import json
import threading
from pathlib import Path

import pytest

from repro.analysis import LintEngine, lockwatch
from repro.analysis.cli import main as lint_main
from repro.analysis.core import all_rules
from repro.analysis.lockwatch import LockOrderError, WatchedLock, named_lock
from repro.analysis.reporters import render_json

SRC = Path(__file__).resolve().parents[1] / "src"


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    """Materialise a fixture under ``tmp_path/repro/<rel>`` so the module
    scoping (``service/...``, ``storage/...``) resolves like the real tree."""
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def lint(tmp_path: Path, **kwargs):
    engine = LintEngine(**kwargs)
    return engine.run([tmp_path], root=tmp_path)


def rules_fired(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------- engine


class TestEngine:
    def test_shipped_tree_lints_clean_with_zero_suppressions(self):
        """The acceptance gate: src/repro has no findings and, stronger than
        required (zero under service/ and storage/), no suppressions at all."""
        report = LintEngine().run([SRC / "repro"], root=SRC)
        assert report.errors == []
        assert report.findings == []
        assert report.suppressed == {}
        assert report.suppressed_by_file == {}
        assert report.files > 50

    def test_unparseable_file_is_an_error(self, tmp_path):
        write_module(tmp_path, "service/broken.py", "def nope(:\n")
        report = lint(tmp_path)
        assert report.findings == []
        assert len(report.errors) == 1
        assert "unable to parse" in report.errors[0].message
        assert report.exit_code() == 2

    def test_exit_code_priority_errors_beat_findings(self, tmp_path):
        write_module(tmp_path, "service/broken.py", "def nope(:\n")
        write_module(tmp_path, "causal/bad.py",
                     "import numpy as np\nx = np.zeros(3)\n")
        report = lint(tmp_path)
        assert report.findings and report.errors
        assert report.exit_code() == 2

    def test_select_and_ignore(self, tmp_path):
        write_module(tmp_path, "causal/bad.py",
                     "import numpy as np\nx = np.zeros(3)\n")
        assert rules_fired(lint(tmp_path, select=["RL003"])) == ["RL003"]
        assert rules_fired(lint(tmp_path, ignore=["RL003"])) == []

    def test_findings_stable_sorted(self, tmp_path):
        write_module(tmp_path, "causal/b.py",
                     "import numpy as np\nx = np.zeros(3)\ny = np.empty(2)\n")
        write_module(tmp_path, "causal/a.py",
                     "import numpy as np\nz = np.full(2, 0.0)\n")
        report = lint(tmp_path)
        keys = [(f.path, f.line, f.col, f.rule) for f in report.findings]
        assert keys == sorted(keys)
        assert [f.path for f in report.findings] == [
            "repro/causal/a.py", "repro/causal/b.py", "repro/causal/b.py"]

    def test_json_report_is_deterministic(self, tmp_path):
        write_module(tmp_path, "causal/bad.py",
                     "import numpy as np\nx = np.zeros(3)\n")
        first = render_json(lint(tmp_path))
        second = render_json(lint(tmp_path))
        assert first == second
        payload = json.loads(first)
        assert payload["format_version"] == 1
        assert payload["summary"]["by_rule"] == {"RL003": 1}
        assert payload["exit_code"] == 1

    def test_rule_registry_covers_all_six(self):
        assert [cls.id for cls in all_rules()] == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]


class TestSuppressions:
    def test_inline_suppression_silences_and_is_counted(self, tmp_path):
        write_module(tmp_path, "causal/bad.py",
                     "import numpy as np\n"
                     "x = np.zeros(3)  # repro-lint: disable=RL003\n")
        report = lint(tmp_path)
        assert report.findings == []
        assert report.suppressed == {"RL003": 1}
        assert report.suppressed_by_file == {"repro/causal/bad.py": 1}
        assert report.exit_code() == 0

    def test_suppression_is_rule_specific(self, tmp_path):
        write_module(tmp_path, "causal/bad.py",
                     "import numpy as np\n"
                     "x = np.zeros(3)  # repro-lint: disable=RL001\n")
        assert rules_fired(lint(tmp_path)) == ["RL003"]

    def test_disable_all(self, tmp_path):
        write_module(tmp_path, "causal/bad.py",
                     "import numpy as np\n"
                     "x = np.zeros(3)  # repro-lint: disable=all\n")
        assert lint(tmp_path).findings == []


class TestCLI:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        write_module(tmp_path, "causal/good.py",
                     "import numpy as np\nx = np.zeros(3, dtype=np.int32)\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings_and_json_out(self, tmp_path, capsys):
        write_module(tmp_path, "causal/bad.py",
                     "import numpy as np\nx = np.zeros(3)\n")
        out_file = tmp_path / "report.json"
        code = lint_main([str(tmp_path), "--format", "json",
                          "--out", str(out_file)])
        assert code == 1
        stdout = capsys.readouterr().out
        assert json.loads(stdout)["summary"]["total"] == 1
        assert json.loads(out_file.read_text())["summary"]["total"] == 1

    def test_exit_two_on_unparseable(self, tmp_path, capsys):
        write_module(tmp_path, "service/broken.py", "def nope(:\n")
        assert lint_main([str(tmp_path)]) == 2
        assert "ERROR" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL006"):
            assert rule_id in out


# ---------------------------------------------------------------------- RL001


RL001_BAD = """\
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count
"""


class TestGuardedBy:
    def test_unguarded_read_fires(self, tmp_path):
        write_module(tmp_path, "service/bad.py", RL001_BAD)
        report = lint(tmp_path, select=["RL001"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "RL001"
        assert finding.line == 14
        assert "_count" in finding.message

    def test_guarded_access_is_clean(self, tmp_path):
        write_module(tmp_path, "service/good.py", RL001_BAD.replace(
            "    def peek(self):\n        return self._count\n",
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self._count\n"))
        assert lint(tmp_path, select=["RL001"]).findings == []

    def test_def_line_annotation_seeds_held_locks(self, tmp_path):
        write_module(tmp_path, "service/helper.py", RL001_BAD.replace(
            "    def peek(self):\n        return self._count\n",
            "    def _peek_locked(self):  # guarded-by: _lock\n"
            "        return self._count\n"))
        assert lint(tmp_path, select=["RL001"]).findings == []

    def test_nested_function_does_not_inherit_held_locks(self, tmp_path):
        write_module(tmp_path, "service/closure.py", RL001_BAD.replace(
            "    def peek(self):\n        return self._count\n",
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                return self._count\n"
            "            return later\n"))
        report = lint(tmp_path, select=["RL001"])
        assert len(report.findings) == 1

    def test_multi_item_with_holds_both(self, tmp_path):
        write_module(tmp_path, "service/multi.py", """\
import threading


class Engine:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._data = {}  # guarded-by: _b

    def swap(self):
        with self._a, self._b:
            self._data.clear()
""")
        assert lint(tmp_path, select=["RL001"]).findings == []

    def test_dataclass_field_annotation(self, tmp_path):
        write_module(tmp_path, "plan/statsy.py", """\
import threading
from dataclasses import dataclass, field


@dataclass
class Stats:
    plans: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record(self):
        with self._lock:
            self.plans += 1

    def snapshot(self):
        return self.plans
""")
        report = lint(tmp_path, select=["RL001"])
        assert len(report.findings) == 1
        assert report.findings[0].line == 15

    def test_init_is_exempt(self, tmp_path):
        assert not any(f.line <= 7 for f in
                       lint(tmp_path, select=["RL001"]).findings)

    def test_unthreaded_module_is_exempt(self, tmp_path):
        write_module(tmp_path, "service/serial.py",
                     RL001_BAD.replace("import threading\n", "")
                     .replace("threading.Lock()", "object()"))
        assert lint(tmp_path, select=["RL001"]).findings == []


# ---------------------------------------------------------------------- RL002


RL002_INVERTED = """\
import threading


class Engine:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def forward(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def backward(self):
        with self._b_lock:
            with self._a_lock:
                pass
"""


class TestLockOrder:
    def test_inverted_nesting_fires(self, tmp_path):
        write_module(tmp_path, "service/abba.py", RL002_INVERTED)
        report = lint(tmp_path, select=["RL002"])
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "both orders" in message
        assert "_a_lock" in message and "_b_lock" in message

    def test_consistent_nesting_is_clean(self, tmp_path):
        write_module(tmp_path, "service/ordered.py", RL002_INVERTED.replace(
            "        with self._b_lock:\n"
            "            with self._a_lock:\n",
            "        with self._a_lock:\n"
            "            with self._b_lock:\n"))
        assert lint(tmp_path, select=["RL002"]).findings == []

    def test_multi_item_with_orders_left_to_right(self, tmp_path):
        write_module(tmp_path, "service/multi.py", RL002_INVERTED.replace(
            "        with self._b_lock:\n"
            "            with self._a_lock:\n"
            "                pass\n",
            "        with self._b_lock, self._a_lock:\n"
            "            pass\n"))
        assert len(lint(tmp_path, select=["RL002"]).findings) == 1

    def test_cross_module_inversion_detected(self, tmp_path):
        half = RL002_INVERTED.replace(
            "    def backward(self):\n"
            "        with self._b_lock:\n"
            "            with self._a_lock:\n"
            "                pass\n", "")
        other = half.replace(
            "        with self._a_lock:\n"
            "            with self._b_lock:\n",
            "        with self._b_lock:\n"
            "            with self._a_lock:\n")
        write_module(tmp_path, "service/one.py", half)
        write_module(tmp_path, "service/two.py", other)
        report = lint(tmp_path, select=["RL002"])
        assert len(report.findings) == 1
        assert "both orders" in report.findings[0].message

    def test_reacquiring_held_lock_fires(self, tmp_path):
        write_module(tmp_path, "service/reent.py", RL002_INVERTED.replace(
            "        with self._b_lock:\n"
            "            with self._a_lock:\n",
            "        with self._a_lock:\n"
            "            with self._a_lock:\n"))
        report = lint(tmp_path, select=["RL002"])
        assert any("already held" in f.message for f in report.findings)

    def test_suppressed_edge_skips_inversion(self, tmp_path):
        write_module(tmp_path, "service/hushed.py", RL002_INVERTED.replace(
            "            with self._a_lock:\n"
            "                pass\n",
            "            with self._a_lock:"
            "  # repro-lint: disable=RL002\n"
            "                pass\n"))
        assert lint(tmp_path, select=["RL002"]).findings == []

    def test_non_lock_context_managers_ignored(self, tmp_path):
        write_module(tmp_path, "service/files.py", """\
import threading


class Writer:
    def __init__(self):
        self._lock = threading.Lock()

    def dump(self, path):
        with self._lock:
            with open(path) as fh:
                return fh.read()
""")
        assert lint(tmp_path, select=["RL002"]).findings == []


# ---------------------------------------------------------------------- RL003


class TestDtypeDiscipline:
    @pytest.mark.parametrize("call", [
        "np.array([1, 2])", "np.zeros(4)", "np.empty(4)", "np.full(4, 0.0)"])
    def test_missing_dtype_fires(self, tmp_path, call):
        write_module(tmp_path, "dataframe/bad.py",
                     f"import numpy as np\nx = {call}\n")
        report = lint(tmp_path, select=["RL003"])
        assert len(report.findings) == 1
        assert report.findings[0].severity == "warning"

    @pytest.mark.parametrize("call", [
        "np.array([1, 2], dtype=np.int32)",
        "np.array([1, 2], np.int32)",           # positional dtype
        "np.zeros(4, dtype=bool)",
        "np.full(4, 0.0, np.float64)",
    ])
    def test_explicit_dtype_is_clean(self, tmp_path, call):
        write_module(tmp_path, "plan/good.py",
                     f"import numpy as np\nx = {call}\n")
        assert lint(tmp_path, select=["RL003"]).findings == []

    def test_non_kernel_module_is_exempt(self, tmp_path):
        write_module(tmp_path, "service/free.py",
                     "import numpy as np\nx = np.zeros(4)\n")
        assert lint(tmp_path, select=["RL003"]).findings == []


# ---------------------------------------------------------------------- RL004


class TestEncodingImmutability:
    @pytest.mark.parametrize("stmt", [
        "col._codes = other",
        "col._vocab = ()",
        "col._codes[0] = 5",
        "col._codes += other",
        "del col._vocab",
        "col._codes.sort()",
        "col._vocab.setflags(write=True)",
    ])
    def test_mutation_fires(self, tmp_path, stmt):
        write_module(tmp_path, "mining/bad.py",
                     f"def f(col, other):\n    {stmt}\n")
        report = lint(tmp_path, select=["RL004"])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "RL004"

    def test_reads_are_allowed(self, tmp_path):
        write_module(tmp_path, "mining/good.py",
                     "def f(col):\n"
                     "    codes = col._codes\n"
                     "    return codes == 3, len(col._vocab)\n")
        assert lint(tmp_path, select=["RL004"]).findings == []

    def test_column_module_is_exempt(self, tmp_path):
        write_module(tmp_path, "dataframe/column.py",
                     "def f(col, other):\n    col._codes = other\n")
        assert lint(tmp_path, select=["RL004"]).findings == []


# ---------------------------------------------------------------------- RL005


class TestAtomicCommit:
    def test_manifest_write_without_replace_fires(self, tmp_path):
        write_module(tmp_path, "storage/bad.py", """\
import json

MANIFEST_NAME = "MANIFEST.json"


def save(directory, payload):
    with open(directory / MANIFEST_NAME, "w") as fh:
        json.dump(payload, fh)
""")
        report = lint(tmp_path, select=["RL005"])
        assert report.findings
        assert all(f.rule == "RL005" for f in report.findings)

    def test_tmp_plus_replace_is_clean(self, tmp_path):
        write_module(tmp_path, "storage/good.py", """\
import json
import os


def save(path, payload):
    tmp = path.with_name(".tmp-" + path.name)
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)
""")
        assert lint(tmp_path, select=["RL005"]).findings == []

    def test_caller_supplied_path_is_clean(self, tmp_path):
        write_module(tmp_path, "storage/shardw.py", """\
from pathlib import Path


def write_shard(path, data):
    with Path(path).open("wb") as fh:
        fh.write(data)
""")
        assert lint(tmp_path, select=["RL005"]).findings == []

    def test_flock_protocol_is_clean(self, tmp_path):
        write_module(tmp_path, "storage/lockfile.py", """\
import fcntl


def guard(directory):
    handle = (directory / ".lock").open("a+b")
    fcntl.flock(handle, fcntl.LOCK_EX)
    return handle
""")
        assert lint(tmp_path, select=["RL005"]).findings == []

    def test_write_after_commit_fires(self, tmp_path):
        write_module(tmp_path, "storage/ordering.py", """\
from repro.storage.format import commit_manifest
from repro.storage.shard import write_shard


def append(directory, manifest, shard_path, arrays):
    commit_manifest(directory, manifest)
    write_shard(shard_path, arrays)
""")
        report = lint(tmp_path, select=["RL005"])
        assert len(report.findings) == 1
        assert "after the manifest commit" in report.findings[0].message

    def test_write_before_commit_is_clean(self, tmp_path):
        write_module(tmp_path, "storage/ordered.py", """\
from repro.storage.format import commit_manifest
from repro.storage.shard import write_shard


def append(directory, manifest, shard_path, arrays):
    write_shard(shard_path, arrays)
    commit_manifest(directory, manifest)
""")
        assert lint(tmp_path, select=["RL005"]).findings == []

    def test_non_storage_module_is_exempt(self, tmp_path):
        write_module(tmp_path, "service/writer.py", """\
import json


def save(path, payload):
    with open(path, "w") as fh:
        json.dump(payload, fh)
""")
        assert lint(tmp_path, select=["RL005"]).findings == []


# ---------------------------------------------------------------------- RL006


class TestFingerprintDeterminism:
    @pytest.mark.parametrize("source,marker", [
        ("def f(d):\n    return [k for k in d.keys()]\n", ".keys()"),
        ("def f(d):\n    for k, v in d.items():\n        pass\n", ".items()"),
        ("def f(x):\n    return id(x)\n", "id()"),
        ("import time\n", "time"),
        ("import random\n", "random"),
        ("from uuid import uuid4\n", "uuid"),
        ("import numpy as np\n\n\ndef f():\n    return np.random.rand()\n",
         "np.random"),
    ])
    def test_nondeterminism_fires(self, tmp_path, source, marker):
        write_module(tmp_path, "plan/ir.py", source)
        report = lint(tmp_path, select=["RL006"])
        assert report.findings, marker
        assert all(f.rule == "RL006" for f in report.findings)

    def test_sorted_iteration_is_clean(self, tmp_path):
        write_module(tmp_path, "sql/normalize.py",
                     "def f(d):\n"
                     "    return [v for _, v in sorted(d.items())]\n")
        assert lint(tmp_path, select=["RL006"]).findings == []

    def test_only_fingerprint_modules_checked(self, tmp_path):
        write_module(tmp_path, "service/clock.py", "import time\n")
        assert lint(tmp_path, select=["RL006"]).findings == []


# ------------------------------------------------------------------- lockwatch


@pytest.fixture()
def watch():
    """Enabled lockwatch with a clean registry; always restored."""
    registry = lockwatch.enable()
    registry.reset()
    yield registry
    registry.reset()
    lockwatch.disable()


class TestLockwatch:
    def test_named_lock_plain_when_disabled(self, monkeypatch):
        # disable() reverts to the environment, so clear that too — this
        # test must pass on the REPRO_LOCKWATCH=1 CI leg as well.
        monkeypatch.delenv(lockwatch.ENV_VAR, raising=False)
        lockwatch.disable()
        assert isinstance(named_lock("x"), type(threading.Lock()))

    def test_named_lock_watched_when_enabled(self, watch):
        lock = named_lock("x")
        assert isinstance(lock, WatchedLock)
        with lock:
            pass
        assert not lock.locked()

    def test_consistent_order_stays_acyclic(self, watch):
        a, b = WatchedLock("A"), WatchedLock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        watch.assert_acyclic()
        assert watch.violations == []
        edges = watch.edges()
        assert [(e.source, e.target) for e in edges] == [("A", "B")]
        assert edges[0].count == 3
        assert edges[0].stack  # acquisition stack captured

    def test_inverted_pair_across_threads_detected(self, watch):
        """The deliberately inverted acquisition pair from the issue: one
        thread takes A then B, another takes B then A.  Run sequentially so
        the test never actually deadlocks — the *graph* still shows the
        cycle, which is the point of the detector."""
        a1, b1 = WatchedLock("A"), WatchedLock("B")
        a2, b2 = WatchedLock("A"), WatchedLock("B")
        errors = []

        def forward():
            try:
                with a1:
                    with b1:
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def backward():
            try:
                with b2:
                    with a2:
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join(timeout=30)
        assert not errors
        assert len(watch.violations) == 1
        violation = watch.violations[0]
        assert set(violation.cycle) == {"A", "B"}
        assert "lock-order cycle" in violation.describe()
        assert watch.cycles()
        with pytest.raises(LockOrderError):
            watch.assert_acyclic()

    def test_same_name_reacquisition_is_a_self_cycle(self, watch):
        outer, inner = WatchedLock("L"), WatchedLock("L")
        with outer:
            with inner:
                pass
        assert any(v.cycle == ("L", "L") for v in watch.violations)

    def test_strict_mode_raises_at_acquisition(self, watch):
        a1, b1 = WatchedLock("A"), WatchedLock("B")
        with a1:
            with b1:
                pass
        b2, a2 = WatchedLock("B", strict=True), WatchedLock("A", strict=True)
        with pytest.raises(LockOrderError):
            with b2:
                with a2:
                    pass
        # The raise happened inside a2.acquire(), before a2 was taken, and
        # propagating out of `with b2:` released b2.
        assert not a2.locked() and not b2.locked()

    def test_release_out_of_order_is_legal(self, watch):
        a, b = WatchedLock("A"), WatchedLock("B")
        a.acquire()
        b.acquire()
        a.release()
        assert watch.held_locks() == ("B",)
        b.release()
        assert watch.held_locks() == ()

    def test_reset_clears_graph(self, watch):
        a, b = WatchedLock("A"), WatchedLock("B")
        with a:
            with b:
                pass
        assert watch.edges()
        watch.reset()
        assert watch.edges() == []
        assert watch.acquisitions == 0
