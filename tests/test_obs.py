"""Tests for the observability stack (``repro.obs``).

Covers the tracer (span nesting, contextvars propagation across the morsel
pool, the disabled no-op fast path), the unified metrics registry
(histogram math, Prometheus exposition well-formedness), the persisted
query-telemetry log (rotation, crash tolerance, never-raises appends), the
``repro obs`` aggregation CLI, and an end-to-end store-backed run that
proves every explain leaves an aggregatable telemetry record.
"""

import argparse
import json
import re
import threading
import time

import pytest

from repro.analysis import lockwatch
from repro.core import CauSumXConfig
from repro.mining.treatments import TreatmentMinerConfig
from repro.net import AdmissionController, ServingMetrics
from repro.obs import (
    LogHistogram,
    MetricsRegistry,
    TelemetryLog,
    read_records,
    telemetry_enabled,
    trace,
)
from repro.obs.cli import aggregate, run_obs, telemetry_directory
from repro.parallel import map_morsels, workers
from repro.service import ExplanationEngine
from repro.storage import DatasetStore

BASE_QUERY = "SELECT Country, AVG(Salary) FROM SO GROUP BY Country"
WHERE_QUERY = ("SELECT Country, AVG(Salary) FROM SO "
               "WHERE Gender = 'Woman' GROUP BY Country")


def obs_config(**overrides) -> CauSumXConfig:
    config = CauSumXConfig(
        k=3, theta=0.5, apriori_threshold=0.1, sample_size=None,
        min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                       significance_level=0.05,
                                       max_values_per_attribute=8),
    )
    return config.with_overrides(**overrides) if overrides else config


# ------------------------------------------------------------------ tracer


class TestTracer:

    def test_span_nesting_durations_and_attrs(self):
        with trace.tracing(True):
            with trace.new_trace("request", trace_id="feed0000feed0000",
                                user="t1") as root:
                with trace.trace_span("outer", step=1) as outer:
                    trace.set_current_attr(extra="yes")
                    with trace.trace_span("inner") as inner:
                        assert trace.current_span() is inner
                        assert trace.current_trace_id() == "feed0000feed0000"
                trace.set_root_attr(status=200)
        tree = trace.span_dict(root)
        assert tree["name"] == "request"
        assert tree["attrs"] == {"user": "t1", "status": 200}
        assert tree["duration_ms"] >= 0
        (outer_dict,) = tree["children"]
        assert outer_dict["name"] == "outer"
        assert outer_dict["attrs"] == {"step": 1, "extra": "yes"}
        (inner_dict,) = outer_dict["children"]
        assert inner_dict["name"] == "inner"
        # Children finish before parents: durations nest.
        assert outer_dict["duration_ms"] >= inner_dict["duration_ms"]
        assert outer.trace_id == inner.trace_id == "feed0000feed0000"
        # The tree is JSON-serializable as-is (telemetry embeds it).
        json.dumps(tree)

    def test_disabled_is_a_strict_noop(self):
        with trace.tracing(False):
            assert not trace.enabled()
            span = trace.trace_span("anything", big=object())
            assert span is trace.NOOP
            with span as entered:
                assert entered is trace.NOOP_SPAN
                assert trace.current_span() is None
                assert trace.current_trace_id() is None
            with trace.new_trace("request") as root:
                pass
            assert trace.span_dict(root) is None
            # The shared no-op context tolerates attribute calls.
            trace.NOOP_SPAN.set(ignored=1)
            trace.set_root_attr(ignored=2)
            trace.set_current_attr(ignored=3)

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_VAR, "1")
        trace.set_enabled(None)
        try:
            assert trace.enabled()
            monkeypatch.setenv(trace.ENV_VAR, "0")
            assert not trace.enabled()
            monkeypatch.delenv(trace.ENV_VAR)
            assert not trace.enabled()  # off by default
        finally:
            trace.set_enabled(None)

    @pytest.mark.parametrize("width", [1, 2, 8])
    def test_propagation_across_map_morsels(self, width):
        seen: list[tuple[int, str]] = []

        def morsel(i: int) -> int:
            seen.append((i, trace.current_trace_id()))
            with trace.trace_span("work", item=i):
                pass
            return i * i

        with trace.tracing(True), workers(width):
            with trace.new_trace("fanout") as root:
                results = map_morsels(morsel, list(range(6)))
        assert results == [i * i for i in range(6)]
        # Every morsel saw the submitting request's trace id, whatever
        # thread it ran on.
        assert sorted(i for i, _ in seen) == list(range(6))
        assert all(tid == root.trace_id for _, tid in seen)
        tree = trace.span_dict(root)
        if width == 1:
            # Serial path: "work" spans attach directly to the root.
            assert [c["name"] for c in tree["children"]] == ["work"] * 6
        else:
            (fan,) = tree["children"]
            assert fan["name"] == "parallel.map"
            assert fan["attrs"]["morsels"] == 6
            morsels = fan["children"]
            assert [m["name"] for m in morsels] == ["parallel.morsel"] * 6
            assert all(m["attrs"]["queue_wait_ms"] >= 0 for m in morsels)
            assert [m["children"][0]["name"] for m in morsels] == ["work"] * 6


# ------------------------------------------------------------------ metrics


PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.einf+-]+)$")


class TestLogHistogram:

    def test_quantiles_and_bounds(self):
        histogram = LogHistogram("latency_seconds")
        for value in (0.001, 0.01, 0.02, 0.03, 0.04):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(0.101)
        # Bucket upper bounds: the p99 bound brackets the max observation.
        assert 0.04 <= histogram.quantile(0.99) <= 0.051
        assert 0.02 <= histogram.quantile(0.5) <= 0.026

    def test_underflow_overflow_and_empty(self):
        histogram = LogHistogram("latency_seconds")
        assert histogram.quantile(0.5) == 0.0  # empty
        histogram.observe(1e-9)  # below the smallest bound
        assert histogram.quantile(0.5) <= 1e-6
        histogram.observe(1e9)  # above the largest bound
        assert histogram.quantile(0.99) == float("inf")
        counts = dict(histogram.bucket_counts())
        assert counts[float("inf")] == 2

    def test_cumulative_bucket_counts(self):
        histogram = LogHistogram("latency_seconds")
        for value in (0.005, 0.005, 0.5, 2.0):
            histogram.observe(value)
        pairs = histogram.bucket_counts()
        bounds = [b for b, _ in pairs]
        counts = [c for _, c in pairs]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)  # cumulative: non-decreasing
        assert pairs[-1] == (float("inf"), 4)


class TestMetricsRegistry:

    def test_counter_gauge_histogram_find_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", op="explain")
        counter.inc()
        counter.inc(2)
        assert registry.counter("repro_test_total", op="explain") is counter
        assert registry.counter("repro_test_total", op="stats") is not counter
        gauge = registry.gauge("repro_test_entries")
        gauge.set(7)
        histogram = registry.histogram("repro_test_seconds")
        histogram.observe(0.25)
        snap = registry.snapshot()
        assert snap["counters"]['repro_test_total{op="explain"}'] == 3
        assert snap["gauges"]["repro_test_entries"] == 7
        assert snap["histograms"]["repro_test_seconds"]["count"] == 1
        assert set(snap) == {"counters", "gauges", "histograms", "providers"}

    def test_providers_feed_snapshot_and_survive_failure(self):
        registry = MetricsRegistry()
        registry.register_provider("good", lambda: {"repro_good_value": 4})
        registry.register_provider("bad", lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["providers"] == {"good": {"repro_good_value": 4}}
        assert "repro_good_value 4" in registry.render_prometheus()

    def test_prometheus_exposition_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_requests_total", op="explain",
                         status="200").inc(5)
        registry.gauge("repro_test_tenants").set(2)
        histogram = registry.histogram("repro_test_duration_seconds")
        for value in (0.001, 0.02, 0.02, 5.0):
            histogram.observe(value)
        registry.register_provider("planner",
                                   lambda: {"repro_test_plans": 9})
        text = registry.render_prometheus()
        lines = text.strip().splitlines()
        assert lines, "exposition must not be empty"
        for line in lines:
            assert PROM_LINE.match(line), f"malformed line: {line!r}"
        # Histogram contract: cumulative buckets, +Inf equals _count.
        bucket_values = [
            float(line.rsplit(" ", 1)[1]) for line in lines
            if line.startswith('repro_test_duration_seconds_bucket{')]
        assert bucket_values == sorted(bucket_values)
        (count_line,) = [l for l in lines
                         if l.startswith("repro_test_duration_seconds_count")]
        assert bucket_values[-1] == float(count_line.rsplit(" ", 1)[1]) == 4
        # One TYPE line per family, before its samples.
        type_lines = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))


# ------------------------------------------------------------------ telemetry


class TestTelemetryLog:

    def test_rotation_and_pruning(self, tmp_path):
        log = TelemetryLog(tmp_path, max_bytes=200, max_files=2)
        payloads = [{"kind": "explain", "i": i, "pad": "x" * 80}
                    for i in range(12)]
        for payload in payloads:
            assert log.record(payload)
        files = log.files()
        assert 1 <= len(files) <= 2  # pruned to max_files
        sequences = [int(f.stem.split("-")[1]) for f in files]
        assert sequences == sorted(sequences)
        assert sequences[-1] > 1  # rotation actually happened
        records, corrupt = read_records(tmp_path)
        assert corrupt == 0
        # Oldest records were pruned with their files; the newest survive
        # in order.
        kept = [r["i"] for r in records]
        assert kept == sorted(kept) and kept[-1] == 11
        stats = log.stats()
        assert stats["written"] == 12 and stats["errors"] == 0
        assert stats["files"] == len(files)
        log.close()

    def test_crash_tolerant_reading_and_resume(self, tmp_path):
        log = TelemetryLog(tmp_path, max_bytes=1 << 20)
        log.record({"i": 0})
        log.record({"i": 1})
        log.close()
        # Simulate a crash mid-append: torn, unterminated final line.
        latest = log.files()[-1]
        with latest.open("ab") as handle:
            handle.write(b'{"i": 2, "torn')
        records, corrupt = read_records(tmp_path)
        assert [r["i"] for r in records] == [0, 1]
        assert corrupt == 1
        # A fresh process resumes the same file after the torn line.
        resumed = TelemetryLog(tmp_path, max_bytes=1 << 20)
        assert resumed.record({"i": 3})
        records, corrupt = read_records(tmp_path)
        assert [r["i"] for r in records] == [0, 1, 3]
        assert corrupt == 1
        resumed.close()

    def test_record_never_raises(self, tmp_path):
        blocker = tmp_path / "occupied"
        blocker.write_text("not a directory")
        log = TelemetryLog(blocker / "telemetry")
        assert log.record({"i": 0}) is False  # mkdir fails underneath a file
        assert log.stats()["errors"] == 1
        assert log.stats()["written"] == 0

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryLog(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            TelemetryLog(tmp_path, max_files=0)

    def test_read_records_missing_directory(self, tmp_path):
        records, corrupt = read_records(tmp_path / "never-created")
        assert records == [] and corrupt == 0

    def test_telemetry_enabled_matrix(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        with trace.tracing(False):
            assert not telemetry_enabled()  # follows the tracer
        with trace.tracing(True):
            assert telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        with trace.tracing(True):
            assert not telemetry_enabled()  # env wins over the tracer
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        with trace.tracing(False):
            assert telemetry_enabled()


# ------------------------------------------------------------------ CLI


class TestObsCli:

    def test_aggregate_rolls_up_records(self):
        records = [
            {"dataset": "so", "duration_ms": 10.0, "queue_wait_ms": 1.5,
             "cache_outcomes": {"summary": "miss", "plan": "miss"},
             "plan": {"conjuncts": [
                 {"estimated_selectivity": 0.5,
                  "actual_selectivity": 0.4}]}},
            {"dataset": "so", "duration_ms": 2.0,
             "cache_outcomes": {"summary": "hit"},
             "plan": {"conjuncts": [
                 {"estimated_selectivity": 0.2,
                  "actual_selectivity": 0.5}]}},
        ]
        summary = aggregate(records)
        assert summary["records"] == 2
        assert summary["by_dataset"] == {"so": 2}
        assert summary["cache_hit_rates"]["summary"] == 0.5
        assert summary["conjuncts_observed"] == 2
        assert summary["selectivity_abs_error_mean"] == pytest.approx(0.2)
        assert summary["selectivity_abs_error_max"] == pytest.approx(0.3)
        assert summary["duration_ms_mean"] == pytest.approx(6.0)
        assert summary["queue_wait_ms_max"] == pytest.approx(1.5)

    def test_summary_without_records_exits_nonzero(self, tmp_path, capsys):
        args = argparse.Namespace(obs_command="summary", store=tmp_path)
        assert run_obs(args) == 1
        assert "no telemetry records" in capsys.readouterr().out

    def test_store_root_resolves_to_telemetry_dir(self, tmp_path):
        (tmp_path / "telemetry").mkdir()
        assert telemetry_directory(tmp_path) == tmp_path / "telemetry"
        assert telemetry_directory(tmp_path / "telemetry") == \
            tmp_path / "telemetry"


# ------------------------------------------------------------------ end-to-end


class TestStoreTelemetryEndToEnd:

    @pytest.fixture(scope="class")
    def telemetered_store(self, so_bundle, tmp_path_factory):
        store = DatasetStore.init(tmp_path_factory.mktemp("obs") / "store")
        store.import_bundle(so_bundle, config=obs_config())
        engine = ExplanationEngine.from_store(store)
        name = engine.datasets()[0]
        with trace.tracing(True):
            engine.explain(name, BASE_QUERY)
            engine.explain(name, BASE_QUERY)  # summary-cache hit
            engine.explain(name, WHERE_QUERY)
        return store, engine, name

    def test_every_explain_leaves_a_record(self, telemetered_store):
        store, engine, name = telemetered_store
        records, corrupt = read_records(store.root / "telemetry")
        assert corrupt == 0
        assert len(records) == 3
        for record in records:
            assert record["kind"] == "explain"
            assert record["dataset"] == name
            assert record["fingerprint"]
            assert record["trace_id"]
            assert record["duration_ms"] >= 0
            assert record["spans"]["name"] == "engine.explain"
            assert "summary" in record["cache_outcomes"]
        assert [r["cached"] for r in records] == [False, True, False]
        assert records[0]["cache_outcomes"]["summary"] == "miss"
        assert records[1]["cache_outcomes"]["summary"] == "hit"

    def test_where_record_carries_est_vs_actual(self, telemetered_store):
        store, _, _ = telemetered_store
        records, _ = read_records(store.root / "telemetry")
        plans = [r["plan"] for r in records if r.get("plan")]
        conjuncts = [c for plan in plans
                     for c in plan.get("conjuncts") or []]
        assert conjuncts, "the WHERE query must persist its scan plan"
        assert any(c.get("estimated_selectivity") is not None
                   and c.get("actual_selectivity") is not None
                   for c in conjuncts)

    def test_aggregate_and_cli_summary(self, telemetered_store, capsys):
        store, _, name = telemetered_store
        records, _ = read_records(store.root / "telemetry")
        summary = aggregate(records)
        assert summary["records"] == 3
        assert summary["by_dataset"] == {name: 3}
        assert 0 < summary["cache_hit_rates"]["summary"] < 1
        assert summary["conjuncts_observed"] >= 1
        assert summary["selectivity_abs_error_mean"] is not None
        for command in ("summary", "top", "slow"):
            args = argparse.Namespace(obs_command=command, store=store.root,
                                      limit=5)
            assert run_obs(args) == 0
        out = capsys.readouterr().out
        assert "3 records" in out

    def test_engine_stats_surface_telemetry_and_unified(self,
                                                        telemetered_store):
        _, engine, _ = telemetered_store
        stats = engine.stats()
        assert stats["telemetry"]["written"] == 3
        assert stats["telemetry"]["errors"] == 0
        metrics = stats["metrics"]
        assert metrics["repro_engine_summary_cache_hits"] >= 1
        assert any(key.startswith("repro_planner_") for key in metrics)

    def test_tracing_off_records_nothing(self, so_bundle, tmp_path):
        store = DatasetStore.init(tmp_path / "store")
        store.import_bundle(so_bundle, config=obs_config())
        engine = ExplanationEngine.from_store(store)
        with trace.tracing(False):
            engine.explain(engine.datasets()[0], BASE_QUERY)
        records, corrupt = read_records(store.root / "telemetry")
        assert records == [] and corrupt == 0
        assert not (store.root / "telemetry").exists()


# ------------------------------------------------------------------ admission


class TestAdmissionQueueWaits:

    def test_queue_wait_is_accounted(self):
        admission = AdmissionController(max_inflight=1, max_queue=4)
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with admission.admit("a"):
                entered.set()
                release.wait(timeout=30)

        def waiter():
            entered.wait(timeout=30)
            with admission.admit("b"):
                pass

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=30)
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        stats = admission.stats()
        assert stats["queue_waits"] == 1
        assert stats["queue_wait_seconds"] > 0
        admission.close()

    def test_unqueued_admits_record_no_wait(self):
        admission = AdmissionController(max_inflight=4, max_queue=4)
        with admission.admit("a"):
            pass
        stats = admission.stats()
        assert stats["queue_waits"] == 0
        assert stats["queue_wait_seconds"] == 0.0
        admission.close()


# ------------------------------------------------------------------ lock order


class TestObsLockOrder:

    def test_observability_stack_is_acyclic_under_load(self, tmp_path):
        watch = lockwatch.enable()
        watch.reset()
        try:
            registry = MetricsRegistry()
            metrics = ServingMetrics()
            log = TelemetryLog(tmp_path, max_bytes=1 << 16, max_files=2)
            errors: list = []
            start = threading.Barrier(4)

            def storm(i: int):
                try:
                    start.wait(timeout=30)
                    with trace.tracing(True):
                        for j in range(20):
                            with trace.new_trace("load", worker=i):
                                registry.counter(
                                    "repro_test_total", op="x").inc()
                                registry.histogram(
                                    "repro_test_seconds").observe(0.001 * j)
                                metrics.record("explain", 200, 0.001,
                                               tenant=f"t{i}")
                                log.record({"i": i, "j": j})
                                map_morsels(lambda v: v + 1, [j, j + 1])
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=storm, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert log.stats()["written"] == 80
            assert metrics.snapshot()["requests_total"] == 80
            watch.assert_acyclic()
            assert watch.violations == []
        finally:
            watch.reset()
            lockwatch.disable()
