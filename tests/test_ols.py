"""Unit tests for the OLS engine."""

import numpy as np
import pytest

from repro.causal import ols_fit


class TestOLSFit:
    def test_recovers_known_coefficients(self):
        rng = np.random.default_rng(0)
        n = 500
        x1 = rng.normal(size=n)
        x2 = rng.normal(size=n)
        y = 2.0 + 3.0 * x1 - 1.5 * x2 + rng.normal(scale=0.1, size=n)
        design = np.column_stack([np.ones(n), x1, x2])
        result = ols_fit(design, y, ["intercept", "x1", "x2"])
        assert result.coefficient("intercept") == pytest.approx(2.0, abs=0.05)
        assert result.coefficient("x1") == pytest.approx(3.0, abs=0.05)
        assert result.coefficient("x2") == pytest.approx(-1.5, abs=0.05)
        assert result.r_squared > 0.99

    def test_p_value_significant_for_real_effect(self):
        rng = np.random.default_rng(1)
        n = 300
        x = rng.normal(size=n)
        y = 4.0 * x + rng.normal(size=n)
        result = ols_fit(np.column_stack([np.ones(n), x]), y, ["c", "x"])
        assert result.p_value("x") < 1e-6

    def test_p_value_large_for_null_effect(self):
        rng = np.random.default_rng(2)
        n = 300
        x = rng.normal(size=n)
        y = rng.normal(size=n)  # independent of x
        result = ols_fit(np.column_stack([np.ones(n), x]), y, ["c", "x"])
        assert result.p_value("x") > 0.01

    def test_collinear_design_does_not_fail(self):
        rng = np.random.default_rng(3)
        n = 100
        x = rng.normal(size=n)
        design = np.column_stack([np.ones(n), x, x])  # duplicated column
        y = x + rng.normal(size=n)
        result = ols_fit(design, y)
        assert np.isfinite(result.coefficients).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ols_fit(np.zeros(10), np.zeros(10))
        with pytest.raises(ValueError):
            ols_fit(np.zeros((10, 2)), np.zeros(5))
        with pytest.raises(ValueError):
            ols_fit(np.zeros((10, 2)), np.zeros(10), ["only-one-name"])

    def test_perfect_fit_has_zero_residual_r2_one(self):
        x = np.arange(10, dtype=float)
        design = np.column_stack([np.ones(10), x])
        y = 1.0 + 2.0 * x
        result = ols_fit(design, y)
        assert result.r_squared == pytest.approx(1.0)


class TestReusableDesign:
    def test_byte_identical_to_hstack_path(self):
        from repro.causal.ols import ReusableDesign

        rng = np.random.default_rng(7)
        n = 500
        confounders = rng.normal(size=(n, 3))
        outcome = rng.normal(size=n)
        design = ReusableDesign(confounders, ["z0", "z1", "z2"])
        for seed in range(5):
            treated = np.random.default_rng(seed).random(n) < 0.4
            reused = design.fit(treated, outcome)
            stacked = ols_fit(
                np.hstack([np.ones((n, 1)),
                           treated.astype(np.float64).reshape(-1, 1),
                           confounders]),
                outcome, ["intercept", "__treatment__", "z0", "z1", "z2"])
            assert reused.coefficients.tobytes() == stacked.coefficients.tobytes()
            assert reused.std_errors.tobytes() == stacked.std_errors.tobytes()
            assert reused.p_values.tobytes() == stacked.p_values.tobytes()

    def test_no_confounders_and_empty_rows(self):
        from repro.causal.ols import ReusableDesign

        design = ReusableDesign(np.empty((4, 0)), [])
        result = design.fit(np.array([True, False, True, False]),
                            np.array([2.0, 1.0, 2.0, 1.0]))
        assert result.coefficient("__treatment__") == pytest.approx(1.0)
