"""Tests for the HTTP serving tier (``repro.net``)."""

import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.analysis import lockwatch
from repro.core import CauSumXConfig
from repro.obs import trace as obs_trace
from repro.mining.treatments import TreatmentMinerConfig
from repro.net import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    RequestShed,
    ServingMetrics,
    TenantRegistry,
    create_server,
    serve_in_thread,
    validate_tenant,
)
from repro.service import ExplanationEngine, ProtocolError, serve_loop
from repro.storage import DatasetStore

BASE_QUERY = "SELECT Country, AVG(Salary) FROM SO GROUP BY Country"
OTHER_QUERY = "SELECT Role, AVG(Salary) FROM SO GROUP BY Role"


def net_config(**overrides) -> CauSumXConfig:
    config = CauSumXConfig(
        k=3, theta=0.5, apriori_threshold=0.1, sample_size=None,
        min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                       significance_level=0.05,
                                       max_values_per_attribute=8),
    )
    return config.with_overrides(**overrides) if overrides else config


def make_registry(bundle, **kwargs) -> TenantRegistry:
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("summary_cache_size", 8)
    return TenantRegistry.single_dataset(
        bundle.name, bundle.table, dag=bundle.dag, config=net_config(),
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=bundle.treatment_attributes, **kwargs)


@contextmanager
def live_server(registry, **server_kwargs):
    """A served ``ReproHTTPServer`` on an ephemeral port, always closed."""
    server = create_server(registry, "127.0.0.1", 0, **server_kwargs)
    serve_in_thread(server)
    try:
        yield server
    finally:
        server.graceful_shutdown(drain_timeout=30.0)


def http_request(server, method, path, body=None, headers=None,
                 timeout=120.0):
    """A minimal HTTP/1.1 client; returns ``(status, raw body bytes)``.

    Deliberately socket-level (no urllib) so the response body bytes arrive
    exactly as sent — the byte-identity tests compare them verbatim.
    """
    host, port = server.server_address[:2]
    payload = b""
    if body is not None:
        payload = body if isinstance(body, bytes) \
            else json.dumps(body).encode("utf-8")
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}",
             "Connection: close", f"Content-Length: {len(payload)}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    request = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(request)
        raw = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    header_text = head.decode("latin-1").lower()
    length = None
    for line in header_text.splitlines():
        if line.startswith("content-length:"):
            length = int(line.split(":", 1)[1].strip())
    body_bytes = rest if length is None else rest[:length]
    return status, body_bytes


def post_json(server, path, body=None, headers=None, timeout=120.0):
    status, raw = http_request(server, "POST", path, body=body,
                               headers=headers, timeout=timeout)
    return status, json.loads(raw)


def strip_volatile_tail(body: bytes) -> bytes:
    """Serialized body minus the per-request observability tail.

    With tracing off this is the identity (the envelope has no ``trace_id``
    / ``duration_ms``), so the byte-identity assertions stay exact; with
    tracing on (``REPRO_TRACE=1`` CI leg) it pops exactly the two volatile
    trailing fields — deterministic envelope ordering guarantees nothing
    else differs.
    """
    if not obs_trace.enabled():
        return body
    decoded = json.loads(body)
    if isinstance(decoded, dict):
        keys = list(decoded)
        volatile = [k for k in ("trace_id", "duration_ms") if k in decoded]
        if volatile:  # the tail fields must come last, in order
            assert keys[-len(volatile):] == volatile, keys
        for key in volatile:
            decoded.pop(key)
    return (json.dumps(decoded, default=str) + "\n").encode("utf-8")


@pytest.fixture(scope="module")
def so_net(so_bundle):
    return so_bundle


# ------------------------------------------------------------------ admission


class TestAdmissionController:
    def test_admits_within_capacity(self):
        admission = AdmissionController(max_inflight=2, max_queue=0)
        with admission.admit("a"):
            with admission.admit("b"):
                stats = admission.stats()
                assert stats["inflight"] == 2
        stats = admission.stats()
        assert stats["inflight"] == 0
        assert stats["admitted"] == 2
        assert stats["peak_inflight"] == 2

    def test_sheds_when_queue_full(self):
        admission = AdmissionController(max_inflight=1, max_queue=0)
        with admission.admit("a"):
            with pytest.raises(RequestShed):
                with admission.admit("b"):
                    pass  # pragma: no cover
        assert admission.stats()["shed"] == 1
        # The slot freed up: the same request is now admitted.
        with admission.admit("b"):
            pass

    def test_per_tenant_cap_sheds_only_that_tenant(self):
        admission = AdmissionController(max_inflight=8, max_queue=8,
                                        tenant_inflight=1)
        with admission.admit("hog"):
            with pytest.raises(RequestShed):
                with admission.admit("hog"):
                    pass  # pragma: no cover
            with admission.admit("other"):
                pass

    def test_queued_request_proceeds_when_slot_frees(self):
        admission = AdmissionController(max_inflight=1, max_queue=4)
        entered = threading.Event()
        release = threading.Event()
        done = threading.Event()

        def holder():
            with admission.admit("a"):
                entered.set()
                release.wait(timeout=30)

        def waiter():
            entered.wait(timeout=30)
            with admission.admit("b"):
                done.set()

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=30)
        assert not done.is_set()  # queued behind the held slot
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert done.is_set()
        assert admission.stats()["peak_queued"] == 1

    def test_deadline_expires_while_queued(self):
        admission = AdmissionController(max_inflight=1, max_queue=4)
        with admission.admit("a"):
            with pytest.raises(DeadlineExceeded):
                with admission.admit("b", Deadline(0.05)):
                    pass  # pragma: no cover
        stats = admission.stats()
        assert stats["deadline_rejects"] == 1
        assert stats["queued"] == 0
        assert "b" not in admission._per_tenant  # tenant count fully released

    def test_close_sheds_with_draining_and_drain_waits(self):
        admission = AdmissionController(max_inflight=2, max_queue=2)
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with admission.admit("a"):
                entered.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=holder)
        thread.start()
        entered.wait(timeout=30)
        admission.close()
        with pytest.raises(RequestShed) as excinfo:
            with admission.admit("b"):
                pass  # pragma: no cover
        assert excinfo.value.code == "draining"
        assert not admission.drain(timeout=0.05)  # holder still inside
        release.set()
        assert admission.drain(timeout=30)
        thread.join(timeout=30)


class TestServingMetrics:
    def test_counters_quantiles_and_text_exposition(self):
        metrics = ServingMetrics()
        for i in range(4):
            metrics.record("explain", 200, 0.010 * (i + 1), tenant="a")
        metrics.record("explain", 429, 0.001, tenant="b")
        snap = metrics.snapshot()
        assert snap["requests_total"] == 5
        assert snap["requests"]["explain"]["200"] == 4
        assert snap["shed_total"] == 1
        assert snap["active_tenants"] == ["a", "b"]
        # Histogram quantiles report bucket upper bounds, so they bracket
        # the observed values with one bucket's slack (≈26% geometric step).
        assert 0.001 <= snap["latency_seconds"]["p50"] \
            <= snap["latency_seconds"]["p99"] <= 0.051
        text = metrics.render_text()
        assert 'repro_http_requests_total{op="explain",status="429"} 1' in text
        assert "repro_http_shed_total 1" in text
        # The histogram family exports cumulative buckets ending at +Inf.
        assert "# TYPE repro_http_request_duration_seconds histogram" in text
        assert 'repro_http_request_duration_seconds_bucket{le="+Inf"} 5' \
            in text
        assert "repro_http_request_duration_seconds_count 5" in text

    def test_no_truncation_under_sustained_load(self):
        # The old fixed-size latency ring silently dropped all but the
        # newest samples; the histogram keeps every observation.
        metrics = ServingMetrics()
        for i in range(10_000):
            metrics.record("stats", 200, 0.001 if i % 2 else 0.9)
        snap = metrics.snapshot()
        assert snap["latency_seconds"]["window"] == 10_000
        # Both modes stay visible: p50 near the fast mode, p99 at the slow.
        assert snap["latency_seconds"]["p50"] <= 0.01
        assert snap["latency_seconds"]["p99"] >= 0.8


class TestDeadline:
    def test_check_raises_after_expiry(self):
        deadline = Deadline(0.01)
        assert deadline.remaining() <= 0.01
        time.sleep(0.02)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check("unit test")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0)


# ------------------------------------------------------------------ registry


class TestTenantRegistry:
    def test_validate_tenant(self):
        assert validate_tenant("team-a.prod_1") == "team-a.prod_1"
        for bad in ("", "a/b", "x" * 65, "sp ace", None):
            with pytest.raises(ProtocolError):
                validate_tenant(bad)

    def test_lazy_isolated_engines(self, so_net):
        registry = make_registry(so_net, tenant_budget_bytes=8 << 20)
        assert registry.tenants() == []
        a = registry.engine_for("a")
        b = registry.engine_for("b")
        assert a is not b
        assert a is registry.engine_for("a")  # memoized
        assert a.memory_budget is not b.memory_budget  # isolated budgets
        assert registry.tenants() == ["a", "b"]

    def test_tenant_cap(self, so_net):
        registry = make_registry(so_net, max_tenants=1)
        registry.engine_for("a")
        with pytest.raises(ProtocolError) as excinfo:
            registry.engine_for("b")
        assert excinfo.value.code == "bad_request"

    def test_append_isolated_between_tenants(self, so_net):
        registry = make_registry(so_net)
        a = registry.engine_for("a")
        b = registry.engine_for("b")
        name = so_net.name
        before = b.dataset_state(name).version
        row = so_net.table.take([0]).to_rows()[0]
        result = a.append_rows(name, [row])
        assert result["version"] == before + 1
        assert b.dataset_state(name).version == before  # b untouched
        assert b.dataset_state(name).table.n_rows \
            == a.dataset_state(name).table.n_rows - 1


# ------------------------------------------------------------------ HTTP


class TestHTTPServer:
    def test_healthz_metrics_and_explain(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry) as server:
            status, body = post_json(server, "/v1/explain",
                                     {"query": BASE_QUERY, "id": 42})
            assert status == 200
            assert body["ok"] is True
            assert body["id"] == 42
            assert body["result"]["k"] == 3
            assert body["cached"] is False

            status, raw = http_request(server, "GET", "/healthz")
            assert status == 200
            assert json.loads(raw)["status"] == "serving"

            status, metrics = http_request(server, "GET", "/metrics")
            metrics = json.loads(metrics)
            assert status == 200
            assert metrics["http"]["requests"]["explain"]["200"] == 1
            assert metrics["admission"]["admitted"] == 1
            assert metrics["tenants"] == ["default"]

            status, text = http_request(server, "GET", "/metrics?format=text")
            assert status == 200
            exposition = text.decode()
            assert 'repro_http_requests_total{op="explain",status="200"} 1' \
                in exposition
            assert 'repro_http_latency_seconds{quantile="0.99"}' in exposition

            # The engine's own stats op surfaces the same HTTP section.
            status, stats = post_json(server, "/v1/stats")
            assert status == 200
            http_section = stats["result"]["http"]
            assert http_section["requests"]["explain"]["200"] == 1
            assert "default" in http_section["active_tenants"]

    def test_http_response_bytes_match_stdin_loop(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry) as server:
            request = {"op": "explain", "query": BASE_QUERY, "id": 9}
            status, first = http_request(server, "POST", "/v1/explain",
                                         body=request)
            assert status == 200
            # Second serving is a cache hit: the response embeds the cached
            # summary (timings included) so both fronts on the same engine
            # must produce identical bytes.
            _, via_http = http_request(server, "POST", "/v1/explain",
                                       body=request)
            engine = server.registry.engine_for("default")
            out = __import__("io").StringIO()
            serve_loop(engine, registry.default_dataset,
                       [json.dumps(request)], out)
            via_stdin = out.getvalue().encode("utf-8")
            assert strip_volatile_tail(via_http) == \
                strip_volatile_tail(via_stdin)
            assert json.loads(via_http)["cached"] is True
            assert strip_volatile_tail(via_http) != \
                strip_volatile_tail(first)  # first compute: cached false

    def test_protocol_errors_map_to_statuses(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry) as server:
            cases = [
                ("/v1/explain", b"{not json", None, 400, "bad_request"),
                ("/v1/explain", [1, 2], None, 400, "bad_request"),
                ("/v1/explain", {"op": "stats"}, None, 400, "bad_request"),
                ("/v1/explain", {}, None, 400, "bad_request"),  # missing query
                ("/v1/explain", {"query": "SELECT"}, None, 400, "bad_request"),
                ("/v1/quit", None, None, 404, "unknown_op"),
                ("/v2/explain", None, None, 404, "unknown_op"),
                ("/v1/explain", {"query": BASE_QUERY, "dataset": "nope"},
                 None, 404, "unknown_dataset"),
                ("/v1/stats", None, {"X-Repro-Tenant": "bad/name"},
                 400, "bad_request"),
                ("/v1/stats", None, {"X-Repro-Deadline-Ms": "-3"},
                 400, "bad_request"),
            ]
            for path, body, headers, expected_status, expected_code in cases:
                status, response = post_json(server, path, body=body,
                                             headers=headers)
                assert status == expected_status, (path, response)
                assert response["ok"] is False
                assert response["error_code"] == expected_code

    def test_saturated_queue_sheds_429(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry, max_inflight=1, max_queue=0) as server:
            # Hold the only slot directly so the shed is deterministic.
            with server.admission.admit("holder"):
                status, response = post_json(server, "/v1/stats")
                assert status == 429
                assert response["error_code"] == "shed"
            assert server.metrics.snapshot()["shed_total"] == 1
            status, _ = post_json(server, "/v1/stats")
            assert status == 200  # recovered once the slot freed

    def test_tenant_cap_shed_does_not_affect_others(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry, max_inflight=8, max_queue=8,
                         tenant_inflight=1) as server:
            with server.admission.admit("hog"):
                status, response = post_json(
                    server, "/v1/stats", headers={"X-Repro-Tenant": "hog"})
                assert status == 429
                status, _ = post_json(
                    server, "/v1/stats", headers={"X-Repro-Tenant": "quiet"})
                assert status == 200

    def test_deadline_expiry_returns_504(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry, max_inflight=1, max_queue=4) as server:
            with server.admission.admit("holder"):
                status, response = post_json(
                    server, "/v1/stats",
                    headers={"X-Repro-Deadline-Ms": "80"})
            assert status == 504
            assert response["error_code"] == "deadline_exceeded"
            assert server.admission.stats()["deadline_rejects"] == 1

    def test_server_default_deadline_applies(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry, max_inflight=1, max_queue=4,
                         default_deadline=0.08) as server:
            with server.admission.admit("holder"):
                status, response = post_json(server, "/v1/stats")
            assert status == 504
            assert response["error_code"] == "deadline_exceeded"

    def test_drain_sheds_new_snapshots_store_tenants(self, so_net, tmp_path):
        store = DatasetStore.init(tmp_path / "store")
        store.import_bundle(so_net, config=net_config())
        registry = TenantRegistry.from_store(store, max_workers=2)
        server = create_server(registry, "127.0.0.1", 0)
        serve_in_thread(server)
        status, body = post_json(server, "/v1/explain",
                                 {"query": BASE_QUERY})
        assert status == 200
        # A second tenant serves from the same store but cannot write back.
        status, _ = post_json(server, "/v1/explain", {"query": BASE_QUERY},
                              headers={"X-Repro-Tenant": "guest"})
        assert status == 200
        server.admission.close()
        status, response = post_json(server, "/v1/stats")
        assert status == 503
        assert response["error_code"] == "draining"
        result = server.graceful_shutdown(drain_timeout=30.0)
        assert result["drained"] is True
        assert result["snapshots"]["default"]["summaries"] >= 1
        assert result["snapshots"]["guest"] is None  # no write-back
        # The snapshot warm-restarts byte-identically from disk.
        restarted = ExplanationEngine.from_store(store)
        assert restarted.stats()["restored_summaries"] >= 1

    def test_concurrent_mixed_load_is_correct_and_acyclic(self, so_net):
        watch = lockwatch.enable()
        watch.reset()
        try:
            registry = make_registry(so_net, tenant_budget_bytes=16 << 20)
            with live_server(registry, max_inflight=4,
                             max_queue=64) as server:
                # Warm both distinct queries once so the storm is cache-served
                # and the test exercises concurrency, not compute time.
                for query in (BASE_QUERY, OTHER_QUERY):
                    status, _ = post_json(server, "/v1/explain",
                                          {"query": query})
                    assert status == 200
                row = so_net.table.take([0]).to_rows()[0]
                errors: list = []
                statuses: list = []
                start = threading.Barrier(8)

                def reader(i: int):
                    try:
                        start.wait(timeout=60)
                        for j in range(4):
                            query = BASE_QUERY if (i + j) % 2 else OTHER_QUERY
                            op, body = ("/v1/explain", {"query": query}) \
                                if j % 4 != 3 else ("/v1/stats", None)
                            status, _ = post_json(server, op, body=body)
                            statuses.append(status)
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)

                def appender(i: int):
                    try:
                        start.wait(timeout=60)
                        for _ in range(2):
                            status, _ = post_json(
                                server, "/v1/append_rows", {"rows": [row]},
                                headers={"X-Repro-Tenant": f"writer-{i}"})
                            statuses.append(status)
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [threading.Thread(target=reader, args=(i,))
                           for i in range(6)]
                threads += [threading.Thread(target=appender, args=(i,))
                            for i in range(2)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=300)
                assert not errors
                assert statuses and all(s == 200 for s in statuses)
                assert server.admission.stats()["shed"] == 0
            watch.assert_acyclic()
            assert watch.violations == []
        finally:
            watch.reset()
            lockwatch.disable()


# ------------------------------------------------------------------ observability


class TestHTTPObservability:
    def test_trace_id_echoed_in_envelope_header_and_errors(self, so_net):
        registry = make_registry(so_net)
        with obs_trace.tracing(True), live_server(registry) as server:
            status, raw = http_request(
                server, "POST", "/v1/explain",
                body={"op": "explain", "query": BASE_QUERY, "id": 3},
                headers={"X-Repro-Trace-Id": "feedc0de00000001"})
            assert status == 200
            body = json.loads(raw)
            assert body["trace_id"] == "feedc0de00000001"
            assert isinstance(body["duration_ms"], float)
            # Deterministic envelope tail: id, trace_id, duration_ms — last.
            assert list(body)[-3:] == ["id", "trace_id", "duration_ms"]
            # Error envelopes carry the trace id too.
            status, raw = http_request(server, "POST", "/v1/explain",
                                       body={"query": "SELECT"},
                                       headers={"X-Repro-Trace-Id": "abc123"})
            assert status == 400
            error_body = json.loads(raw)
            assert error_body["ok"] is False
            assert error_body["trace_id"] == "abc123"
            # A request without the header gets a generated 16-hex id.
            status, raw = http_request(server, "POST", "/v1/stats")
            generated = json.loads(raw)["trace_id"]
            assert len(generated) == 16
            int(generated, 16)

    def test_trace_id_response_header(self, so_net):
        registry = make_registry(so_net)
        with obs_trace.tracing(True), live_server(registry) as server:
            host, port = server.server_address[:2]
            payload = json.dumps({"op": "stats"}).encode()
            request = (f"POST /v1/stats HTTP/1.1\r\nHost: {host}:{port}\r\n"
                       f"Connection: close\r\n"
                       f"X-Repro-Trace-Id: cafe0000cafe0000\r\n"
                       f"Content-Length: {len(payload)}\r\n\r\n"
                       ).encode() + payload
            with socket.create_connection((host, port), timeout=120) as conn:
                conn.sendall(request)
                raw = b""
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            head = raw.partition(b"\r\n\r\n")[0].decode("latin-1")
            assert "x-repro-trace-id: cafe0000cafe0000" in head.lower()

    def test_tracing_off_omits_trace_fields_and_header(self, so_net):
        registry = make_registry(so_net)
        with obs_trace.tracing(False), live_server(registry) as server:
            status, raw = http_request(
                server, "POST", "/v1/stats",
                headers={"X-Repro-Trace-Id": "feedc0de00000001"})
            assert status == 200
            body = json.loads(raw)
            assert "trace_id" not in body
            assert "duration_ms" not in body

    def test_byte_identity_with_tracing_on(self, so_net):
        registry = make_registry(so_net)
        with obs_trace.tracing(True), live_server(registry) as server:
            request = {"op": "explain", "query": BASE_QUERY, "id": 9}
            http_request(server, "POST", "/v1/explain", body=request)  # warm
            _, via_http = http_request(server, "POST", "/v1/explain",
                                       body=request)
            engine = server.registry.engine_for("default")
            out = __import__("io").StringIO()
            serve_loop(engine, registry.default_dataset,
                       [json.dumps(request)], out)
            via_stdin = out.getvalue().encode("utf-8")
            assert via_http != via_stdin  # trace ids differ...
            assert strip_volatile_tail(via_http) == \
                strip_volatile_tail(via_stdin)  # ...and nothing else

    def test_shed_while_queued_counted_exactly_once(self, so_net):
        # Regression pin for the queue-drop accounting fixed with the
        # serving tier: a request shed *while queued* (drain began during
        # its wait) must appear exactly once in shed_total and exactly once
        # in its per-status counter — not once per counter family per path.
        registry = make_registry(so_net)
        server = create_server(registry, "127.0.0.1", 0,
                               max_inflight=1, max_queue=4)
        serve_in_thread(server)
        entered = threading.Event()
        release = threading.Event()
        results: list = []
        try:
            def holder():
                with server.admission.admit("holder"):
                    entered.set()
                    release.wait(timeout=30)

            def queued():
                results.append(post_json(server, "/v1/stats"))

            hold_thread = threading.Thread(target=holder)
            hold_thread.start()
            assert entered.wait(timeout=30)
            queued_thread = threading.Thread(target=queued)
            queued_thread.start()
            deadline = time.monotonic() + 30
            while server.admission.stats()["queued"] < 1:
                assert time.monotonic() < deadline, "request never queued"
                time.sleep(0.005)
            server.admission.close()  # shed the queued request mid-wait
            queued_thread.join(timeout=30)
            release.set()
            hold_thread.join(timeout=30)
            status, body = results[0]
            assert status == 503
            assert body["error_code"] == "draining"
            snap = server.metrics.snapshot()
            assert snap["shed_total"] == 1
            assert snap["requests"]["stats"]["503"] == 1
            assert snap["requests_total"] == 1
        finally:
            release.set()
            server.graceful_shutdown(drain_timeout=5.0)

    def test_unified_metrics_on_metrics_endpoint(self, so_net):
        registry = make_registry(so_net)
        with live_server(registry) as server:
            post_json(server, "/v1/explain", {"query": BASE_QUERY})
            status, raw = http_request(server, "GET", "/metrics")
            assert status == 200
            body = json.loads(raw)
            unified = body["unified"]
            assert set(unified) == {"counters", "gauges", "histograms",
                                    "providers"}
            # Global-stat providers surface under the unified vocabulary.
            assert any(key.startswith("repro_planner_")
                       for key in unified["providers"].get("planner", {}))
            assert any(key.startswith("repro_parallel_")
                       for key in unified["providers"].get("parallel", {}))
            status, raw = http_request(server, "GET", "/metrics?format=text")
            assert status == 200
            text = raw.decode("utf-8")
            assert "# TYPE repro_http_requests_total counter" in text
            assert "repro_planner_plans" in text
