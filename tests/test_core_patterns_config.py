"""Unit tests for explanation patterns, summaries, configuration, and rendering."""

import pytest

from repro.causal import EffectEstimate
from repro.core import CauSumXConfig, ExplanationPattern, ExplanationSummary
from repro.core.render import describe_pattern, describe_predicate, render_pattern, render_summary
from repro.dataframe import Op, Pattern, Predicate
from repro.mining.grouping import GroupingPattern
from repro.mining.treatments import TreatmentCandidate


def _candidate(value: float, p: float = 0.001) -> TreatmentCandidate:
    return TreatmentCandidate(Pattern.of(("Role", "=", "Exec")),
                              EffectEstimate(value, 1.0, p, 100, 100))


def _grouping(groups) -> GroupingPattern:
    return GroupingPattern(Pattern.of(("Continent", "=", "Europe")), frozenset(groups))


class TestExplanationPattern:
    def test_explainability_sums_absolute_cates(self):
        pattern = ExplanationPattern(_grouping([("FR",)]), _candidate(30.0),
                                     _candidate(-40.0))
        assert pattern.explainability == pytest.approx(70.0)

    def test_explainability_single_direction(self):
        assert ExplanationPattern(_grouping([("FR",)]),
                                  _candidate(30.0)).explainability == pytest.approx(30.0)

    def test_has_treatment(self):
        assert not ExplanationPattern(_grouping([("FR",)])).has_treatment()
        assert ExplanationPattern(_grouping([("FR",)]), _candidate(1.0)).has_treatment()


class TestExplanationSummary:
    def _summary(self, patterns, groups, k=3, theta=0.5):
        return ExplanationSummary(patterns=patterns, all_groups=tuple(groups),
                                  k=k, theta=theta)

    def test_coverage_and_objective(self):
        patterns = [ExplanationPattern(_grouping([("FR",), ("DE",)]), _candidate(10.0)),
                    ExplanationPattern(
                        GroupingPattern(Pattern.of(("GDP", "=", "High")),
                                        frozenset([("US",)])), _candidate(20.0))]
        summary = self._summary(patterns, [("FR",), ("DE",), ("US",), ("IN",)])
        assert summary.coverage == pytest.approx(0.75)
        assert summary.total_explainability == pytest.approx(30.0)
        assert summary.satisfies_constraints()

    def test_constraint_violations_detected(self):
        pattern = ExplanationPattern(_grouping([("FR",)]), _candidate(10.0))
        too_many = self._summary([pattern] * 4, [("FR",)], k=3)
        assert not too_many.satisfies_constraints()
        low_coverage = self._summary([pattern], [("FR",), ("A",), ("B",), ("C",)],
                                     theta=0.9)
        assert not low_coverage.satisfies_constraints()

    def test_group_assignment_and_uncovered(self):
        pattern = ExplanationPattern(_grouping([("FR",)]), _candidate(10.0))
        summary = self._summary([pattern], [("FR",), ("US",)])
        assignment = summary.group_assignment()
        assert assignment[("FR",)] == [0]
        assert summary.uncovered_groups() == [("US",)]

    def test_sorted_by_weight(self):
        light = ExplanationPattern(_grouping([("FR",)]), _candidate(1.0))
        heavy = ExplanationPattern(_grouping([("DE",)]), _candidate(100.0))
        summary = self._summary([light, heavy], [("FR",), ("DE",)])
        assert summary.sorted_by_weight()[0] is heavy


class TestConfig:
    def test_defaults_match_paper(self):
        config = CauSumXConfig()
        assert config.k == 5
        assert config.theta == 0.75
        assert config.apriori_threshold == 0.1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CauSumXConfig(k=0)
        with pytest.raises(ValueError):
            CauSumXConfig(theta=1.5)
        with pytest.raises(ValueError):
            CauSumXConfig(solver="quantum")
        with pytest.raises(ValueError):
            CauSumXConfig(grouping_mode="magic")
        with pytest.raises(ValueError):
            CauSumXConfig(directions="+/-")

    def test_with_overrides_creates_copy(self):
        base = CauSumXConfig()
        changed = base.with_overrides(k=7)
        assert changed.k == 7
        assert base.k == 5


class TestRendering:
    def test_describe_predicate_operators(self):
        assert describe_predicate(Predicate("Age", Op.LT, 35)) == "Age is below 35"
        assert describe_predicate(Predicate("Age", Op.GE, 55)) == "Age is at least 55"
        assert describe_predicate(Predicate("Role", Op.EQ, "QA")) == "Role is QA"

    def test_describe_empty_pattern(self):
        assert describe_pattern(Pattern()) == "all tuples"

    def test_render_pattern_contains_both_directions(self):
        pattern = ExplanationPattern(_grouping([("FR",)]), _candidate(36000.0),
                                     _candidate(-39000.0))
        text = render_pattern(pattern, outcome="annual salary")
        assert "positive effect on annual salary" in text
        assert "adverse impact" in text
        assert "Continent is Europe" in text

    def test_render_summary_footer(self):
        pattern = ExplanationPattern(_grouping([("FR",)]), _candidate(10.0))
        summary = ExplanationSummary([pattern], (("FR",),), k=3, theta=1.0)
        text = render_summary(summary)
        assert "coverage 100%" in text
        assert "1 explanation pattern" in text

    def test_render_empty_summary(self):
        summary = ExplanationSummary([], (("FR",),), k=3, theta=1.0)
        assert "No explanation patterns" in render_summary(summary)
