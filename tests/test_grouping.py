"""Unit tests for grouping-pattern mining and redundancy removal (Section 5.1)."""

import pytest

from repro.dataframe import Pattern
from repro.mining import GroupingPattern, mine_grouping_patterns
from repro.mining.grouping import deduplicate_grouping_patterns
from repro.sql import AggregateView, GroupByAvgQuery


@pytest.fixture
def so_view(so_bundle):
    return AggregateView(so_bundle.table, so_bundle.query)


class TestMineGroupingPatterns:
    def test_patterns_only_use_grouping_attributes(self, so_view, so_bundle):
        patterns = mine_grouping_patterns(so_view, so_bundle.grouping_attributes,
                                          min_support=0.1)
        allowed = set(so_bundle.grouping_attributes)
        for grouping in patterns:
            assert set(grouping.pattern.attributes) <= allowed

    def test_every_pattern_covers_at_least_one_group(self, so_view, so_bundle):
        patterns = mine_grouping_patterns(so_view, so_bundle.grouping_attributes)
        assert patterns
        assert all(grouping.coverage >= 1 for grouping in patterns)

    def test_coverage_matches_view_definition(self, so_view, so_bundle):
        patterns = mine_grouping_patterns(so_view, so_bundle.grouping_attributes)
        for grouping in patterns[:5]:
            assert grouping.covered_groups == so_view.covered_groups(grouping.pattern)

    def test_no_two_patterns_cover_same_group_set(self, so_view, so_bundle):
        patterns = mine_grouping_patterns(so_view, so_bundle.grouping_attributes)
        coverages = [grouping.covered_groups for grouping in patterns]
        assert len(coverages) == len(set(coverages))

    def test_higher_threshold_fewer_patterns(self, so_view, so_bundle):
        low = mine_grouping_patterns(so_view, so_bundle.grouping_attributes,
                                     min_support=0.05)
        high = mine_grouping_patterns(so_view, so_bundle.grouping_attributes,
                                      min_support=0.4)
        assert len(high) <= len(low)

    def test_singleton_fallback_without_grouping_attributes(self, so_view):
        patterns = mine_grouping_patterns(so_view, [], min_support=0.1)
        # One pattern per country, each covering exactly one group.
        assert len(patterns) == so_view.m
        assert all(grouping.coverage == 1 for grouping in patterns)

    def test_include_singleton_groups_flag(self, so_view, so_bundle):
        patterns = mine_grouping_patterns(so_view, so_bundle.grouping_attributes,
                                          include_singleton_groups=True)
        singleton_count = sum(1 for g in patterns if g.coverage == 1)
        assert singleton_count >= 1


class TestDeduplication:
    def test_shortest_pattern_wins(self):
        groups = frozenset([("US",), ("Canada",)])
        long = GroupingPattern(Pattern.of(("HDI", "=", "High"), ("GDP", "=", "High")),
                               groups)
        short = GroupingPattern(Pattern.of(("GDP", "=", "High")), groups)
        kept = deduplicate_grouping_patterns([long, short])
        assert len(kept) == 1
        assert kept[0].pattern == short.pattern

    def test_distinct_coverages_all_kept(self):
        a = GroupingPattern(Pattern.of(("x", "=", 1)), frozenset([("a",)]))
        b = GroupingPattern(Pattern.of(("x", "=", 2)), frozenset([("b",)]))
        assert len(deduplicate_grouping_patterns([a, b])) == 2

    def test_sorted_by_coverage_descending(self):
        a = GroupingPattern(Pattern.of(("x", "=", 1)), frozenset([("a",)]))
        b = GroupingPattern(Pattern.of(("x", "=", 2)), frozenset([("b",), ("c",)]))
        kept = deduplicate_grouping_patterns([a, b])
        assert kept[0].coverage == 2
