"""Unit tests for predicates and conjunctive patterns (Definition 4.1)."""

import numpy as np
import pytest

from repro.dataframe import Op, Pattern, Predicate, Table


@pytest.fixture
def table():
    return Table.from_columns({
        "city": ["Boston", "Miami", "Boston", "Denver"],
        "temp": [30.0, 85.0, None, 55.0],
        "snow": ["yes", "no", "yes", "no"],
    })


class TestOp:
    def test_parse_aliases(self):
        assert Op.parse("=") is Op.EQ
        assert Op.parse("==") is Op.EQ
        assert Op.parse("<>") is Op.NE
        assert Op.parse("<=") is Op.LE

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            Op.parse("~=")


class TestPredicate:
    def test_equality_on_categorical(self, table):
        mask = Predicate("city", Op.EQ, "Boston").evaluate(table)
        assert list(mask) == [True, False, True, False]

    def test_inequality_on_numeric(self, table):
        mask = Predicate("temp", Op.LT, 60).evaluate(table)
        assert list(mask) == [True, False, False, True]

    def test_missing_values_never_match(self, table):
        mask = Predicate("temp", Op.GT, 0).evaluate(table)
        assert list(mask) == [True, True, False, True]

    def test_not_equal(self, table):
        mask = Predicate("snow", "!=", "yes").evaluate(table)
        assert list(mask) == [False, True, False, True]

    def test_ordered_comparison_on_strings(self, table):
        mask = Predicate("city", Op.LE, "Boston").evaluate(table)
        assert list(mask) == [True, False, True, False]

    def test_evaluate_value_scalar(self):
        predicate = Predicate("x", Op.GE, 10)
        assert predicate.evaluate_value(12)
        assert not predicate.evaluate_value(9)
        assert not predicate.evaluate_value(None)

    def test_hash_and_equality(self):
        assert Predicate("a", "=", 1) == Predicate("a", "==", 1)
        assert len({Predicate("a", "=", 1), Predicate("a", "=", 1)}) == 1

    def test_op_string_accepted(self, table):
        mask = Predicate("temp", ">=", 55).evaluate(table)
        assert list(mask) == [False, True, False, True]


class TestPattern:
    def test_empty_pattern_matches_all(self, table):
        assert Pattern().evaluate(table).all()
        assert Pattern().support(table) == table.n_rows

    def test_conjunction(self, table):
        pattern = Pattern.of(("city", "=", "Boston"), ("snow", "=", "yes"))
        assert list(pattern.evaluate(table)) == [True, False, True, False]

    def test_equalities_constructor(self, table):
        pattern = Pattern.equalities({"city": "Miami", "snow": "no"})
        assert pattern.support(table) == 1

    def test_duplicate_predicates_are_removed(self):
        p = Predicate("a", "=", 1)
        assert len(Pattern([p, p])) == 1

    def test_extend(self, table):
        base = Pattern.of(("city", "=", "Boston"))
        extended = base.extend(Predicate("snow", Op.EQ, "yes"))
        assert len(extended) == 2
        assert len(base) == 1  # immutable

    def test_attributes_property(self):
        pattern = Pattern.of(("b", "=", 1), ("a", "=", 2))
        assert pattern.attributes == ("a", "b")

    def test_pattern_equality_is_order_insensitive(self):
        p1 = Pattern.of(("a", "=", 1), ("b", "=", 2))
        p2 = Pattern.of(("b", "=", 2), ("a", "=", 1))
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_evaluate_row(self):
        pattern = Pattern.of(("a", "=", 1), ("b", ">", 5))
        assert pattern.evaluate_row({"a": 1, "b": 10})
        assert not pattern.evaluate_row({"a": 1, "b": 2})
        assert not pattern.evaluate_row({"a": 2, "b": 10})
        assert not pattern.evaluate_row({"a": 1})

    def test_conflicts_with(self):
        p1 = Pattern.of(("a", "=", 1))
        p2 = Pattern.of(("a", "=", 2), ("b", "=", 3))
        p3 = Pattern.of(("b", "=", 3))
        assert p1.conflicts_with(p2)
        assert not p1.conflicts_with(p3)

    def test_support_counts_matching_rows(self, table):
        assert Pattern.of(("snow", "=", "yes")).support(table) == 2

    def test_mask_is_boolean_numpy_array(self, table):
        mask = Pattern.of(("city", "=", "Denver")).evaluate(table)
        assert isinstance(mask, np.ndarray)
        assert mask.dtype == bool
