"""Tests for adaptive re-planning and bitmap cracking (``repro.adapt``).

Covers the ISSUE 10 checklist: feedback-corrected estimation (EWMA over
telemetry actuals, drift-triggered re-planning), hot-predicate promotion to
committed per-shard bitmap indexes with budget/LRU demotion, bitmap-served
selects byte-identical to the oracle across worker widths (including
post-append coverage and post-compact invalidation), telemetry-reader
version filtering, the ``--per-conjunct`` obs view, and lock-order
acyclicity with promotion concurrent with serving.
"""

from __future__ import annotations

import argparse
import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import (
    GLOBAL_CORRECTOR,
    GLOBAL_HEAT,
    AdaptiveConfig,
    EstimateCorrector,
    HeatTracker,
    adaptive_config,
    adaptive_enabled,
    adaptive_overrides,
    config_from_env,
    predicate_from_repr,
)
from repro.analysis import lockwatch
from repro.core import CauSumXConfig, summary_to_dict
from repro.dataframe import Op, Pattern, Predicate, Table
from repro.mining.treatments import TreatmentMinerConfig
from repro.obs.telemetry import TelemetryLog, TelemetryReader
from repro.parallel import workers
from repro.plan import GLOBAL_PLANNER_STATS
from repro.plan.config import oracle_mode
from repro.service import ExplanationEngine
from repro.storage import DatasetStore, StorageError
from repro.storage.shard import pack_bitmap, unpack_bitmap


@pytest.fixture(autouse=True)
def clean_adapt_state():
    """Every test starts from empty global corrector/heat/planner state."""
    GLOBAL_CORRECTOR.reset()
    GLOBAL_HEAT.reset()
    GLOBAL_PLANNER_STATS.reset()
    yield
    GLOBAL_CORRECTOR.reset()
    GLOBAL_HEAT.reset()
    GLOBAL_PLANNER_STATS.reset()


def _table(n: int = 400, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    countries = ["US", "India", "China", "France", "Japan"]
    roles = ["Dev", "DS", "QA"]
    return Table.from_columns({
        "Country": [countries[i] for i in rng.integers(0, len(countries), n)],
        "Role": [roles[i] for i in rng.integers(0, len(roles), n)],
        "Age": rng.integers(18, 70, n).astype(float),
        "Salary": rng.normal(100.0, 25.0, n),
    }, name="people")


# ------------------------------------------------------------------ config


class TestAdaptiveConfig:
    def test_defaults_enabled(self):
        assert adaptive_enabled()
        assert adaptive_config().heat_threshold > 0

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPT", "0")
        monkeypatch.setenv("REPRO_ADAPT_HEAT", "7")
        monkeypatch.setenv("REPRO_ADAPT_DRIFT", "0.5")
        monkeypatch.setenv("REPRO_ADAPT_INDEX_BUDGET", "4096")
        config = config_from_env()
        assert not config.enabled
        assert config.heat_threshold == 7
        assert config.drift_threshold == 0.5
        assert config.index_budget_bytes == 4096

    def test_invalid_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPT_HEAT", "not-a-number")
        assert config_from_env().heat_threshold == \
            AdaptiveConfig().heat_threshold

    def test_overrides_restore(self):
        before = adaptive_config()
        with adaptive_overrides(enabled=False, heat_threshold=1):
            assert not adaptive_enabled()
            assert adaptive_config().heat_threshold == 1
        assert adaptive_config() == before


# ------------------------------------------------------------------ corrector


class TestEstimateCorrector:
    INC = ("people", 400)

    def test_below_min_observations_estimate_stands(self):
        corrector = EstimateCorrector()
        predicate = Predicate("Country", Op.EQ, "US")
        corrector.observe(self.INC, repr(predicate), 0.01, 0.9)
        value, applied = corrector.correction(self.INC, predicate, 0.01)
        assert (value, applied) == (0.01, False)

    def test_ewma_replaces_estimate_after_min_observations(self):
        corrector = EstimateCorrector()
        predicate = Predicate("Country", Op.EQ, "US")
        for _ in range(3):
            corrector.observe(self.INC, repr(predicate), 0.01, 0.9)
        value, applied = corrector.correction(self.INC, predicate, 0.01)
        assert applied
        assert value == pytest.approx(0.9)

    def test_actuals_clamped_to_unit_interval(self):
        corrector = EstimateCorrector()
        predicate = Predicate("Age", Op.LT, 40.0)
        for _ in range(3):
            corrector.observe(self.INC, repr(predicate), 0.5, 7.0)
        value, _ = corrector.correction(self.INC, predicate, 0.5)
        assert value == 1.0

    def test_incarnations_isolated(self):
        corrector = EstimateCorrector()
        predicate = Predicate("Country", Op.EQ, "US")
        for _ in range(3):
            corrector.observe(self.INC, repr(predicate), 0.01, 0.9)
        other = ("people", 500)  # same name, different row count
        _, applied = corrector.correction(other, predicate, 0.01)
        assert not applied

    def test_corrected_counts_correction_does_not(self):
        corrector = EstimateCorrector()
        predicate = Predicate("Country", Op.EQ, "US")
        for _ in range(3):
            corrector.observe(self.INC, repr(predicate), 0.01, 0.9)
        corrector.correction(self.INC, predicate, 0.01)
        assert corrector.snapshot()["corrections_served"] == 0
        corrector.corrected(self.INC, predicate, 0.01)
        assert corrector.snapshot()["corrections_served"] == 1

    def test_observe_plan_skips_unexecuted_conjuncts(self):
        from types import SimpleNamespace
        corrector = EstimateCorrector()
        plan = SimpleNamespace(conjuncts=(
            SimpleNamespace(predicate=Predicate("Country", Op.EQ, "US"),
                            estimated_selectivity=0.2,
                            actual_selectivity=0.4),
            SimpleNamespace(predicate=Predicate("Role", Op.EQ, "Dev"),
                            estimated_selectivity=0.3,
                            actual_selectivity=None),
        ))
        corrector.observe_plan(self.INC, plan)
        entries = corrector.entries_for(self.INC)
        assert set(entries) == {"Country == 'US'"}

    def test_weighted_observation_counts_toward_minimum(self):
        corrector = EstimateCorrector()
        predicate = Predicate("Country", Op.EQ, "US")
        corrector.observe(self.INC, repr(predicate), 0.01, 0.9, weight=5)
        _, applied = corrector.correction(self.INC, predicate, 0.01)
        assert applied


# ------------------------------------------------------------------ heat


class TestHeatTracker:
    def test_threshold_and_ordering(self):
        tracker = HeatTracker()
        a = Predicate("Country", Op.EQ, "US")
        b = Predicate("Role", Op.EQ, "Dev")
        for _ in range(3):
            tracker.record("people", [a, b])
        tracker.record("people", [a])
        assert tracker.hot("people", threshold=4) == [(repr(a), a)]
        hot = tracker.hot("people", threshold=3)
        assert [key for key, _ in hot] == [repr(a), repr(b)]

    def test_rank_unknown_is_coldest(self):
        tracker = HeatTracker()
        tracker.record("people", [Predicate("Country", Op.EQ, "US")])
        assert tracker.rank("people", "nope") == (0, 0)
        assert tracker.rank("people", "Country == 'US'") > (0, 0)

    def test_warm_replays_counts_and_fills_predicate(self):
        tracker = HeatTracker()
        predicate = Predicate("Country", Op.EQ, "US")
        tracker.warm("people", repr(predicate), 10, predicate)
        assert tracker.hot("people", threshold=10) == \
            [(repr(predicate), predicate)]
        assert tracker.snapshot()["serves_recorded"] == 10


# ------------------------------------------------------------------ repr parsing


class TestPredicateFromRepr:
    def test_simple_cases(self):
        assert predicate_from_repr("Age <= 40") == \
            Predicate("Age", Op.LE, 40)
        assert predicate_from_repr("Country == 'US'") == \
            Predicate("Country", Op.EQ, "US")

    def test_operator_inside_value(self):
        assert predicate_from_repr("x == 'a < b'") == \
            Predicate("x", Op.EQ, "a < b")

    def test_strict_rejects_bare_words_lax_accepts(self):
        assert predicate_from_repr("channel == web") is None
        assert predicate_from_repr("channel == web", strict=False) == \
            Predicate("channel", Op.EQ, "web")

    def test_garbage_is_none(self):
        assert predicate_from_repr("no operator here") is None
        assert predicate_from_repr("== 'US'") is None
        assert predicate_from_repr(None) is None

    @settings(max_examples=60, deadline=None)
    @given(
        attribute=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                                   whitelist_characters="_"),
            min_size=1, max_size=12),
        op=st.sampled_from(list(Op)),
        value=st.one_of(
            st.integers(-10**6, 10**6),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(max_size=20)),
    )
    def test_round_trip(self, attribute, op, value):
        predicate = Predicate(attribute, op, value)
        assert predicate_from_repr(repr(predicate)) == predicate


# ------------------------------------------------------------------ bitmaps


class TestPackedBitmaps:
    def test_round_trip(self):
        mask = np.random.default_rng(0).random(1000) < 0.3
        spec = pack_bitmap(mask)
        assert spec["n_rows"] == 1000
        assert spec["matches"] == int(mask.sum())
        assert np.array_equal(unpack_bitmap(spec), mask)

    def test_truncated_payload_rejected(self):
        spec = pack_bitmap(np.ones(64, dtype=bool))
        spec["n_rows"] = 1000
        with pytest.raises(StorageError):
            unpack_bitmap(spec)


class TestStoredIndexes:
    @pytest.fixture
    def dataset(self, tmp_path):
        store = DatasetStore.init(tmp_path / "store")
        return store.import_table("people", _table(), shard_rows=100)

    def test_promote_covers_all_shards_same_version(self, dataset):
        version = dataset.manifest.version
        result = dataset.promote_index(Predicate("Country", Op.EQ, "US"))
        assert result["shards"] == len(dataset.manifest.shards)
        assert result["version"] == version  # no version bump
        stats = dataset.index_stats()
        assert stats["indexes"]["Country == 'US'"]["n_rows"] == 400
        assert stats["total_nbytes"] == result["nbytes"]

    def test_promote_rejects_unknown_attribute_and_unsafe_value(self, dataset):
        with pytest.raises(StorageError):
            dataset.promote_index(Predicate("Nope", Op.EQ, "US"))
        with pytest.raises(StorageError):
            dataset.promote_index(Predicate("Country", Op.EQ, object()))

    def test_drop_removes_everywhere(self, dataset):
        dataset.promote_index(Predicate("Country", Op.EQ, "US"))
        result = dataset.drop_index("Country == 'US'")
        assert result["shards"] == len(dataset.manifest.shards)
        assert dataset.index_stats()["indexes"] == {}
        assert dataset.drop_index("Country == 'US'")["shards"] == 0

    @pytest.mark.parametrize("width", [1, 2, 8])
    def test_bitmap_select_byte_identical_to_oracle(self, dataset, width):
        table = _table()
        dataset.promote_index(Predicate("Country", Op.EQ, "US"))
        dataset.promote_index(Predicate("Age", Op.LE, 40.0))
        loaded = dataset.load_table()
        assert loaded.predicate_index_keys() == \
            {"Country == 'US'", "Age <= 40.0"}
        pattern = Pattern([Predicate("Country", Op.EQ, "US"),
                           Predicate("Age", Op.LE, 40.0),
                           Predicate("Role", Op.EQ, "Dev")])
        with oracle_mode():
            oracle = table.select(pattern)
        with workers(width):
            selected, plan = loaded.plan_shard_select(pattern)
        assert selected == oracle
        assert plan is not None and plan.rows_out == oracle.n_rows
        assert loaded.scan_stats()["bitmap_conjuncts_served"] > 0

    def test_append_extends_coverage_results_stay_identical(self, dataset):
        dataset.promote_index(Predicate("Country", Op.EQ, "US"))
        shards_before = len(dataset.manifest.shards)
        batch = _table(80, seed=9)
        dataset.append(batch)
        stats = dataset.index_stats()
        entry = stats["indexes"]["Country == 'US'"]
        assert stats["shards_total"] == shards_before + 1
        assert entry["shards"] == stats["shards_total"]  # new shard covered
        combined = _table().concat(batch)
        pattern = Pattern([Predicate("Country", Op.EQ, "US")])
        with oracle_mode():
            oracle = combined.select(pattern)
        selected, _ = dataset.load_table().plan_shard_select(pattern)
        assert selected == oracle

    def test_compact_invalidates_then_rebuild(self, dataset):
        dataset.promote_index(Predicate("Country", Op.EQ, "US"))
        dataset.compact(shard_rows=200)
        # compaction rewrites rows: stale bitmaps must not survive it
        assert dataset.index_stats()["indexes"] == {}
        result = dataset.promote_index(Predicate("Country", Op.EQ, "US"))
        assert result["shards"] == len(dataset.manifest.shards)
        pattern = Pattern([Predicate("Country", Op.EQ, "US")])
        with oracle_mode():
            oracle = _table().select(pattern)
        selected, _ = dataset.load_table().plan_shard_select(pattern)
        assert selected == oracle

    def test_live_install_and_demotion_hides_committed_spec(self, dataset):
        loaded = dataset.load_table()  # handles predate the promotion
        result = dataset.promote_index(Predicate("Country", Op.EQ, "US"))
        assert loaded.predicate_index_keys() == set()
        loaded.install_predicate_index(result["key"], result["masks"])
        assert loaded.predicate_index_keys() == {"Country == 'US'"}
        loaded.drop_predicate_index("Country == 'US'")
        assert loaded.predicate_index_keys() == set()
        pattern = Pattern([Predicate("Country", Op.EQ, "US")])
        selected, _ = loaded.plan_shard_select(pattern)
        with oracle_mode():
            assert selected == _table().select(pattern)


# ------------------------------------------------------------------ engine


def _small_config(**overrides) -> CauSumXConfig:
    config = CauSumXConfig(
        k=3, theta=0.5, apriori_threshold=0.1, sample_size=None,
        min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=1, min_group_size=5,
                                       max_values_per_attribute=6))
    return config.with_overrides(**overrides) if overrides else config


WHERE_SQL = ("SELECT Country, AVG(Salary) FROM SO "
             "WHERE Gender = 'Male' AND Continent != 'Oceania' "
             "GROUP BY Country")


def _payload(summary) -> str:
    payload = summary_to_dict(summary)
    payload.pop("timings", None)
    return json.dumps(payload, sort_keys=True, default=str)


class TestEngineAdaptiveLoop:
    @pytest.fixture
    def store(self, so_bundle, tmp_path):
        store = DatasetStore.init(tmp_path / "store")
        store.import_bundle(so_bundle, config=_small_config(), shard_rows=150)
        return store

    def test_heat_promotion_and_counters(self, store, so_bundle):
        with adaptive_overrides(heat_threshold=3):
            engine = ExplanationEngine.from_store(store, max_workers=1)
            for _ in range(4):
                engine.explain(so_bundle.name, WHERE_SQL)
            committed = store.dataset(so_bundle.name).index_stats()["indexes"]
            assert committed  # at least one conjunct promoted
            planner = engine.stats()["planner"]
            assert planner["indexes_promoted"] >= 1
            assert planner["adaptive"]["enabled"]
            assert planner["adaptive"]["heat"]["serves_recorded"] > 0
            # a fresh materialization (cached views dropped, as a drift
            # purge would) now answers the WHERE from the live bitmaps
            engine._view_cache.purge(lambda key: True)
            engine.explain(so_bundle.name, WHERE_SQL,
                           use_summary_cache=False)
            state = engine.dataset_state(so_bundle.name)
            assert state.table.scan_stats()["bitmap_conjuncts_served"] > 0

    def test_bitmap_served_summary_byte_identical_to_oracle(
            self, store, so_bundle):
        with adaptive_overrides(heat_threshold=2):
            engine = ExplanationEngine.from_store(store, max_workers=1)
            for _ in range(3):
                engine.explain(so_bundle.name, WHERE_SQL)
            adaptive = engine.explain(so_bundle.name, WHERE_SQL,
                                      use_summary_cache=False)
        with oracle_mode():
            oracle_engine = ExplanationEngine.from_store(store, max_workers=1)
            oracle = oracle_engine.explain(so_bundle.name, WHERE_SQL)
        assert _payload(adaptive) == _payload(oracle)

    def test_budget_demotes_strictly_colder_index(self, store, so_bundle):
        name = so_bundle.name
        dataset = store.dataset(name)
        cold = Predicate("Gender", Op.NE, "Female")
        dataset.promote_index(cold)  # committed but never served
        nbytes = dataset.index_stats()["total_nbytes"]
        with adaptive_overrides(heat_threshold=3,
                                index_budget_bytes=nbytes + 1):
            engine = ExplanationEngine.from_store(store, max_workers=1)
            for _ in range(4):
                engine.explain(name, WHERE_SQL)
            committed = dataset.index_stats()["indexes"]
            assert repr(cold) not in committed  # cold one demoted
            assert committed  # a served-hot predicate took its slot
            planner = engine.stats()["planner"]
            assert planner["indexes_demoted"] >= 1
            assert planner["indexes_promoted"] >= 1

    def test_drift_purges_cached_views_and_counts(self, store, so_bundle):
        name = so_bundle.name
        with adaptive_overrides(heat_threshold=10**6):
            engine = ExplanationEngine.from_store(store, max_workers=1)
            engine.explain(name, WHERE_SQL)
            state = engine.dataset_state(name)
            view = next(view for key, view in engine._view_cache.items()
                        if key[0] == name)
            conjunct = view.scan_plan.conjuncts[0]
            # teach the corrector the cached plan's estimate is far off
            # (enough observations to out-weigh the EWMA seed the serve
            # itself contributed)
            wrong = min(1.0, conjunct.estimated_selectivity + 0.9)
            for _ in range(6):
                GLOBAL_CORRECTOR.observe(
                    (state.table.name, state.table.n_rows),
                    repr(conjunct.predicate),
                    conjunct.estimated_selectivity, wrong)
            before = engine.stats()["view_cache"]["entries"]
            engine.explain(name, WHERE_SQL)  # tick runs the drift check
            planner = engine.stats()["planner"]
            assert planner["drift_replans"] >= 1
            # the re-planned view (recreated on the next serve) is stable
            engine.explain(name, WHERE_SQL, use_summary_cache=False)
            replans = engine.stats()["planner"]["drift_replans"]
            engine.explain(name, WHERE_SQL, use_summary_cache=False)
            assert engine.stats()["planner"]["drift_replans"] == replans
            assert before >= 1

    def test_corrections_reach_plan_scan(self, store, so_bundle):
        name = so_bundle.name
        with adaptive_overrides(heat_threshold=10**6):
            engine = ExplanationEngine.from_store(store, max_workers=1)
            for _ in range(3):
                # purge so every serve re-plans (a cached view never calls
                # plan_scan); by the third plan the corrector has enough
                # observations per conjunct to replace the estimates
                engine._view_cache.purge(lambda key: True)
                engine.explain(name, WHERE_SQL, use_summary_cache=False)
            planner = engine.stats()["planner"]
            assert planner["corrections_applied"] > 0
            assert planner["adaptive"]["corrector"]["observations"] > 0

    def test_disabled_leaves_no_trace(self, store, so_bundle):
        with adaptive_overrides(enabled=False):
            engine = ExplanationEngine.from_store(store, max_workers=1)
            for _ in range(3):
                engine.explain(so_bundle.name, WHERE_SQL)
        assert GLOBAL_HEAT.snapshot()["serves_recorded"] == 0
        assert GLOBAL_CORRECTOR.snapshot()["observations"] == 0
        assert store.dataset(so_bundle.name).index_stats()["indexes"] == {}


# ------------------------------------------------------------------ warm start


class TestWarmStart:
    def test_telemetry_replay_seeds_heat_and_corrector(
            self, so_bundle, tmp_path):
        store = DatasetStore.init(tmp_path / "store")
        store.import_bundle(so_bundle, config=_small_config())
        name = so_bundle.name
        version = store.dataset(name).manifest.version
        log = TelemetryLog(store.root / "telemetry")
        for _ in range(5):
            log.record({
                "dataset": name, "version": version,
                "plan": {"conjuncts": [
                    {"predicate": "Gender == 'Male'",
                     "estimated_selectivity": 0.1,
                     "actual_selectivity": 0.7}]}})
        log.close()
        engine = ExplanationEngine.from_store(store, max_workers=1)
        assert GLOBAL_HEAT.rank(name, "Gender == 'Male'")[0] == 5
        state = engine.dataset_state(name)
        entries = GLOBAL_CORRECTOR.entries_for(
            (state.table.name, state.table.n_rows))
        assert entries["Gender == 'Male'"]["observations"] == 5
        assert entries["Gender == 'Male'"]["ewma_actual"] == pytest.approx(0.7)

    def test_stale_versions_do_not_warm(self, so_bundle, tmp_path):
        store = DatasetStore.init(tmp_path / "store")
        store.import_bundle(so_bundle, config=_small_config())
        name = so_bundle.name
        log = TelemetryLog(store.root / "telemetry")
        log.record({"dataset": name, "version": 99,
                    "plan": {"conjuncts": [
                        {"predicate": "Gender == 'Male'",
                         "estimated_selectivity": 0.1,
                         "actual_selectivity": 0.7}]}})
        log.record({"dataset": "ghost", "version": 0,
                    "plan": {"conjuncts": [
                        {"predicate": "x == 1",
                         "estimated_selectivity": 0.1,
                         "actual_selectivity": 0.7}]}})
        log.close()
        ExplanationEngine.from_store(store, max_workers=1)
        assert GLOBAL_HEAT.snapshot()["serves_recorded"] == 0
        assert GLOBAL_CORRECTOR.snapshot()["observations"] == 0


# ------------------------------------------------------------------ reader


class TestTelemetryReader:
    def test_version_window_filtering(self, tmp_path):
        log = TelemetryLog(tmp_path)
        log.record({"dataset": "d", "version": 0, "plan": None})
        log.record({"dataset": "d", "version": 3, "plan": None})
        log.record({"dataset": "d", "version": 9, "plan": None})
        log.record({"dataset": "other", "version": 0, "plan": None})
        log.record({"dataset": "d", "version": "bogus", "plan": None})
        log.close()
        reader = TelemetryReader(tmp_path, versions={"d": 3},
                                 min_versions={"d": 1})
        records, corrupt, stale = reader.read()
        assert corrupt == 0
        assert stale == 4  # v0 (below min), v9 (future), other, bogus
        assert [r["version"] for r in records] == [3]
        unfiltered = TelemetryReader(tmp_path)
        assert len(unfiltered.read()[0]) == 5

    def test_conjunct_stats_ranking_and_executed(self, tmp_path):
        log = TelemetryLog(tmp_path)
        for actual in (0.5, 0.7):
            log.record({"dataset": "d", "version": 0,
                        "plan": {"conjuncts": [
                            {"predicate": "a == 1",
                             "estimated_selectivity": 0.1,
                             "actual_selectivity": actual}]}})
        log.record({"dataset": "d", "version": 0,
                    "plan": {"conjuncts": [
                        {"predicate": "b == 2",
                         "estimated_selectivity": 0.2,
                         "actual_selectivity": None}]}})
        log.close()
        rows = TelemetryReader(tmp_path, versions={"d": 0}).conjunct_stats()
        assert [r["predicate"] for r in rows] == ["a == 1", "b == 2"]
        worst = rows[0]
        assert worst["count"] == 2 and worst["executed"] == 2
        assert worst["mean_abs_error"] == pytest.approx(0.5)
        assert worst["max_abs_error"] == pytest.approx(0.6)
        assert worst["mean_actual"] == pytest.approx(0.6)
        never = rows[1]
        assert never["count"] == 1 and never["executed"] == 0
        assert never["mean_abs_error"] == 0.0

    def test_obs_summary_per_conjunct(self, tmp_path, capsys):
        from repro.obs.cli import run_obs
        log = TelemetryLog(tmp_path / "telemetry")
        log.record({"dataset": "d", "version": 0, "duration_ms": 1.0,
                    "plan": {"conjuncts": [
                        {"predicate": "a == 1",
                         "estimated_selectivity": 0.1,
                         "actual_selectivity": 0.9}]}})
        log.close()
        args = argparse.Namespace(obs_command="summary",
                                  store=tmp_path, per_conjunct=5)
        assert run_obs(args) == 0
        out = capsys.readouterr().out
        assert "worst-estimated conjuncts" in out
        assert "a == 1" in out


# ------------------------------------------------------------------ CLI


class TestStoreIndexCli:
    def test_ls_promote_drop(self, tmp_path, capsys):
        from repro.cli import main
        root = tmp_path / "store"
        store = DatasetStore.init(root)
        store.import_table("people", _table(), shard_rows=100)
        assert main(["store", "index", "promote", str(root), "people",
                     "Country == 'US'"]) == 0
        assert main(["store", "index", "ls", str(root), "people"]) == 0
        out = capsys.readouterr().out
        assert "promoted Country == 'US'" in out
        assert "1 index(es)" in out
        assert main(["store", "index", "drop", str(root), "people",
                     "Country == 'US'"]) == 0
        assert store.dataset("people").index_stats()["indexes"] == {}

    def test_promote_bad_predicate_or_attribute(self, tmp_path, capsys):
        from repro.cli import main
        root = tmp_path / "store"
        store = DatasetStore.init(root)
        store.import_table("people", _table())
        assert main(["store", "index", "promote", str(root), "people",
                     "no operator"]) == 2
        assert main(["store", "index", "promote", str(root), "people",
                     "Nope == 'x'"]) == 2
        err = capsys.readouterr().err
        assert "cannot parse predicate" in err
        assert "not a stored attribute" in err


# ------------------------------------------------------------------ lockwatch


class TestAdaptiveLockOrder:
    def test_promotion_concurrent_with_serving_stays_acyclic(
            self, so_bundle, tmp_path):
        registry = lockwatch.enable()
        registry.reset()
        try:
            store = DatasetStore.init(tmp_path / "store")
            store.import_bundle(so_bundle, config=_small_config(),
                                shard_rows=150)
            name = so_bundle.name
            with adaptive_overrides(heat_threshold=2):
                engine = ExplanationEngine.from_store(store, max_workers=2)
                errors = []

                def serve():
                    try:
                        for _ in range(4):
                            engine.explain(name, WHERE_SQL,
                                           use_summary_cache=False)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [threading.Thread(target=serve) for _ in range(3)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert not errors
            assert store.dataset(name).index_stats()["indexes"]
            registry.assert_acyclic()
            assert registry.violations == []
        finally:
            registry.reset()
            lockwatch.disable()
