"""Unit tests for the treatment-pattern lattice and Algorithm 2."""

import pytest

from repro.causal import CATEEstimator
from repro.dataframe import Pattern
from repro.mining import PatternLattice, TreatmentMinerConfig, mine_top_treatment, mine_top_treatments
from repro.sql import AggregateView


class TestPatternLattice:
    def test_atomic_predicates_categorical(self, simple_table):
        lattice = PatternLattice(simple_table, ["Gender", "Education"])
        atoms = lattice.atomic_predicates()
        attributes = {p.attribute for p in atoms}
        assert attributes == {"Gender", "Education"}
        assert all(p.op.value == "==" for p in atoms)

    def test_numeric_attribute_becomes_threshold_predicates(self, so_bundle):
        lattice = PatternLattice(so_bundle.table, ["Salary"],
                                 max_values_per_attribute=5, numeric_bins=3)
        atoms = lattice.atomic_predicates()
        assert atoms
        assert all(p.op.value in ("<=", ">") for p in atoms)

    def test_max_values_per_attribute_cap(self, so_bundle):
        lattice = PatternLattice(so_bundle.table, ["Country"],
                                 max_values_per_attribute=3)
        assert len(lattice.level_one()) == 3

    def test_next_level_requires_all_parents(self):
        p_a = Pattern.of(("a", "=", 1))
        p_b = Pattern.of(("b", "=", 1))
        p_c = Pattern.of(("c", "=", 1))
        children = PatternLattice.next_level([p_a, p_b, p_c])
        assert Pattern.of(("a", "=", 1), ("b", "=", 1)) in children
        # With only two survivors, their join is the only child.
        children = PatternLattice.next_level([p_a, p_b])
        assert children == [Pattern.of(("a", "=", 1), ("b", "=", 1))]

    def test_next_level_skips_conflicting_values(self):
        p1 = Pattern.of(("a", "=", 1))
        p2 = Pattern.of(("a", "=", 2))
        assert PatternLattice.next_level([p1, p2]) == []

    def test_next_level_empty_input(self):
        assert PatternLattice.next_level([]) == []

    def test_parents_enumeration(self):
        pattern = Pattern.of(("a", "=", 1), ("b", "=", 2))
        parents = PatternLattice.parents(pattern)
        assert Pattern.of(("a", "=", 1)) in parents
        assert Pattern.of(("b", "=", 2)) in parents


class TestAlgorithm2:
    @pytest.fixture
    def estimator(self, synthetic_bundle):
        return CATEEstimator(synthetic_bundle.table, "O", dag=synthetic_bundle.dag,
                             min_group_size=5)

    @pytest.fixture
    def config(self):
        return TreatmentMinerConfig(max_levels=3, min_group_size=5,
                                    significance_level=1.0, keep_fraction=0.6)

    def test_positive_direction_finds_positive_cate(self, estimator, synthetic_bundle, config):
        best = mine_top_treatment(estimator, Pattern(), synthetic_bundle.treatment_attributes,
                                  "+", synthetic_bundle.dag, config)
        assert best is not None
        assert best.cate > 0

    def test_negative_direction_finds_negative_cate(self, estimator, synthetic_bundle, config):
        best = mine_top_treatment(estimator, Pattern(), synthetic_bundle.treatment_attributes,
                                  "-", synthetic_bundle.dag, config)
        assert best is not None
        assert best.cate < 0

    def test_ground_truth_direction_of_t1(self, estimator, synthetic_bundle, config):
        """T1 enters the outcome positively, so T1=5 must have a positive CATE."""
        estimate = estimator.estimate(Pattern.of(("T1", "=", 5)))
        assert estimate.value > 0
        estimate = estimator.estimate(Pattern.of(("T2", "=", 5)))
        assert estimate.value < 0  # T2 enters negatively

    def test_best_positive_uses_high_odd_low_even_values(self, estimator,
                                                         synthetic_bundle, config):
        best = mine_top_treatment(estimator, Pattern(), synthetic_bundle.treatment_attributes,
                                  "+", synthetic_bundle.dag, config)
        signs = synthetic_bundle.ground_truth["signs"]
        for predicate in best.pattern:
            value = float(predicate.value)
            if signs[predicate.attribute] > 0:
                assert value >= 4
            else:
                assert value <= 2

    def test_invalid_direction_rejected(self, estimator, synthetic_bundle):
        with pytest.raises(ValueError):
            mine_top_treatment(estimator, Pattern(), synthetic_bundle.treatment_attributes,
                               "*", synthetic_bundle.dag)

    def test_attribute_pruning_uses_dag(self, synthetic_bundle, config):
        """Attributes with no causal path to O are pruned when the DAG says so."""
        estimator = CATEEstimator(synthetic_bundle.table, "O",
                                  dag=synthetic_bundle.dag, min_group_size=5)
        best = mine_top_treatment(estimator, Pattern(),
                                  [*synthetic_bundle.treatment_attributes, "G1"],
                                  "+", synthetic_bundle.dag, config)
        assert best is not None
        assert "G1" not in best.pattern.attributes

    def test_significance_filter_can_reject_everything(self, estimator, synthetic_bundle):
        config = TreatmentMinerConfig(significance_level=1e-300, min_group_size=5)
        best = mine_top_treatment(estimator, Pattern(),
                                  synthetic_bundle.treatment_attributes, "+",
                                  synthetic_bundle.dag, config)
        assert best is None

    def test_mine_both_directions(self, estimator, synthetic_bundle, config):
        both = mine_top_treatments(estimator, Pattern(),
                                   synthetic_bundle.treatment_attributes,
                                   synthetic_bundle.dag, config)
        assert set(both) == {"+", "-"}
        assert both["+"].cate > 0 > both["-"].cate

    def test_grouping_pattern_restricts_subpopulation(self, synthetic_bundle, config):
        estimator = CATEEstimator(synthetic_bundle.table, "O",
                                  dag=synthetic_bundle.dag, min_group_size=5)
        grouping = Pattern.of(("G1", "=", "bucket0"))
        best = mine_top_treatment(estimator, grouping,
                                  synthetic_bundle.treatment_attributes, "+",
                                  synthetic_bundle.dag, config)
        assert best is not None
        # The estimate's unit count cannot exceed the sub-population size.
        sub_size = grouping.support(synthetic_bundle.table)
        assert best.estimate.n_units <= sub_size
