"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.dataframe import write_csv
from repro.datasets import list_datasets


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain"])

    def test_dataset_and_csv_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--dataset", "german",
                                       "--csv", str(tmp_path / "x.csv")])


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(list_datasets())

    def test_explain_builtin_dataset(self, capsys):
        code = main(["explain", "--dataset", "synthetic", "--n", "300",
                     "--k", "2", "--theta", "0.5", "--outcome-label", "O"])
        out = capsys.readouterr().out
        assert code == 0
        assert "effect size" in out

    def test_explain_csv_with_dag(self, tmp_path, capsys, so_bundle):
        csv_path = tmp_path / "so.csv"
        write_csv(so_bundle.table.sample(400, seed=0), csv_path)
        dag_path = tmp_path / "dag.json"
        dag_path.write_text(json.dumps(so_bundle.dag.to_dict()))
        code = main(["explain", "--csv", str(csv_path),
                     "--query", "SELECT Country, AVG(Salary) FROM SO GROUP BY Country",
                     "--dag", str(dag_path), "--k", "2", "--theta", "0.3"])
        out = capsys.readouterr().out
        assert code in (0, 1)  # may be infeasible at this tiny size, but must run
        assert "explanation pattern" in out or "No explanation patterns" in out

    def test_explain_csv_without_query_errors(self, tmp_path, capsys, so_bundle):
        csv_path = tmp_path / "so.csv"
        write_csv(so_bundle.table.sample(50, seed=0), csv_path)
        assert main(["explain", "--csv", str(csv_path)]) == 2

    def test_explain_csv_no_dag_uses_discovery(self, tmp_path, capsys, synthetic_bundle):
        csv_path = tmp_path / "synthetic.csv"
        write_csv(synthetic_bundle.table, csv_path)
        code = main(["explain", "--csv", str(csv_path), "--no-discovery",
                     "--query", "SELECT G1, AVG(O) FROM t GROUP BY G1",
                     "--k", "2", "--theta", "0.5"])
        out = capsys.readouterr().out
        assert "No-DAG baseline" in out
        assert code in (0, 1)

    def test_batch_command(self, tmp_path, capsys):
        queries = tmp_path / "queries.sql"
        queries.write_text(
            "# repeated on purpose — served from the summary cache\n"
            "SELECT G1, AVG(O) FROM t GROUP BY G1\n"
            "SELECT G1, AVG(O) FROM t GROUP BY G1\n")
        out = tmp_path / "summaries.json"
        code = main(["batch", "--dataset", "synthetic", "--n", "300",
                     "--k", "2", "--theta", "0.5",
                     "--queries", str(queries), "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload) == 2
        assert payload[0]["patterns"] == payload[1]["patterns"]

    def test_batch_empty_queries_errors(self, tmp_path):
        queries = tmp_path / "queries.sql"
        queries.write_text("# only a comment\n")
        assert main(["batch", "--dataset", "synthetic", "--n", "200",
                     "--queries", str(queries)]) == 2

    def test_serve_command_loop(self, tmp_path, capsys, monkeypatch):
        import io

        requests = "\n".join([
            "SELECT G1, AVG(O) FROM t GROUP BY G1",
            json.dumps({"op": "stats", "id": 9}),
            json.dumps({"op": "quit"}),
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        code = main(["serve", "--dataset", "synthetic", "--n", "300",
                     "--k", "2", "--theta", "0.5"])
        out = capsys.readouterr().out
        responses = [json.loads(line) for line in out.splitlines() if line.strip()]
        assert code == 0
        assert len(responses) == 3  # explain, stats, quit ack
        assert all(r["ok"] for r in responses)
        assert responses[1]["id"] == 9
        assert responses[2]["quit"] is True

    def test_case_study_command(self, capsys):
        code = main(["case-study", "figure18_german", "--n", "800"])
        out = capsys.readouterr().out
        assert code == 0
        # At reduced sizes some purposes may lack significant treatments; the
        # command must still run and print either the summary or the
        # constraints message.
        assert ("credit risk" in out) or ("No explanation patterns" in out)
