"""Unit tests for conditional-independence testing and causal discovery."""

import numpy as np
import pytest

from repro.dataframe import Column, Table
from repro.discovery import (
    fci_lite,
    fisher_z_independent,
    lingam_lite,
    no_dag,
    partial_correlation,
    pc_algorithm,
)
from repro.graph import CausalDAG


@pytest.fixture(scope="module")
def chain_data():
    """X -> M -> Y with strong signal, n=1500."""
    rng = np.random.default_rng(0)
    n = 1500
    x = rng.normal(size=n)
    m = 2.0 * x + rng.normal(scale=0.5, size=n)
    y = 1.5 * m + rng.normal(scale=0.5, size=n)
    return Table([
        Column("X", [float(v) for v in x], numeric=True),
        Column("M", [float(v) for v in m], numeric=True),
        Column("Y", [float(v) for v in y], numeric=True),
    ])


@pytest.fixture(scope="module")
def independent_data():
    rng = np.random.default_rng(1)
    n = 1000
    return Table({
        "A": [float(v) for v in rng.normal(size=n)],
        "B": [float(v) for v in rng.normal(size=n)],
    })


class TestCITest:
    def test_partial_correlation_marginal(self, chain_data):
        assert partial_correlation(chain_data, "X", "Y") > 0.8

    def test_partial_correlation_given_mediator(self, chain_data):
        assert abs(partial_correlation(chain_data, "X", "Y", ["M"])) < 0.15

    def test_fisher_z_dependence(self, chain_data):
        assert not fisher_z_independent(chain_data, "X", "M")

    def test_fisher_z_conditional_independence(self, chain_data):
        assert fisher_z_independent(chain_data, "X", "Y", ["M"], alpha=0.01)

    def test_fisher_z_independent_pair(self, independent_data):
        assert fisher_z_independent(independent_data, "A", "B")

    def test_constant_column_is_independent(self):
        table = Table({"A": [1.0] * 50, "B": [float(i) for i in range(50)]})
        assert fisher_z_independent(table, "A", "B")

    def test_tiny_sample_defaults_to_independent(self):
        table = Table({"A": [1.0, 2.0], "B": [2.0, 4.0]})
        assert fisher_z_independent(table, "A", "B")


class TestPC:
    def test_chain_skeleton_recovered(self, chain_data):
        dag = pc_algorithm(chain_data)
        skeleton = {frozenset(e) for e in dag.edges}
        assert frozenset({"X", "M"}) in skeleton
        assert frozenset({"M", "Y"}) in skeleton
        assert frozenset({"X", "Y"}) not in skeleton

    def test_output_is_acyclic(self, chain_data):
        dag = pc_algorithm(chain_data)
        assert len(dag.topological_order()) == 3

    def test_collider_orientation(self):
        rng = np.random.default_rng(2)
        n = 2000
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        c = a + b + rng.normal(scale=0.3, size=n)
        table = Table({"A": [float(v) for v in a], "B": [float(v) for v in b],
                       "C": [float(v) for v in c]})
        dag = pc_algorithm(table)
        assert dag.has_edge("A", "C")
        assert dag.has_edge("B", "C")
        assert not dag.has_edge("A", "B") and not dag.has_edge("B", "A")

    def test_independent_data_gives_empty_graph(self, independent_data):
        assert pc_algorithm(independent_data).n_edges == 0

    def test_categorical_attributes_supported(self, so_bundle):
        dag = pc_algorithm(so_bundle.table,
                           attributes=["Country", "GDP", "Role", "Salary"])
        assert isinstance(dag, CausalDAG)
        assert set(dag.nodes) == {"Country", "GDP", "Role", "Salary"}


class TestOtherDiscovery:
    def test_fci_is_no_denser_than_pc(self, chain_data):
        pc = pc_algorithm(chain_data)
        fci = fci_lite(chain_data)
        assert fci.n_edges <= pc.n_edges

    def test_lingam_produces_dag(self, chain_data):
        dag = lingam_lite(chain_data)
        assert len(dag.topological_order()) == 3  # acyclic by construction

    def test_lingam_finds_strong_edges(self, chain_data):
        dag = lingam_lite(chain_data)
        skeleton = {frozenset(e) for e in dag.edges}
        assert frozenset({"X", "M"}) in skeleton or frozenset({"M", "Y"}) in skeleton

    def test_no_dag_star_shape(self, simple_table):
        dag = no_dag(simple_table, "Salary")
        assert dag.n_edges == len(simple_table.attributes) - 1
        assert all(child == "Salary" for _, child in dag.edges)
