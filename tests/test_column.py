"""Unit tests for repro.dataframe.column."""

import numpy as np
import pytest

from repro.dataframe import Column


class TestConstruction:
    def test_numeric_inference(self):
        col = Column("x", [1, 2, 3.5])
        assert col.numeric
        assert col.values.dtype == np.float64

    def test_categorical_inference(self):
        col = Column("x", ["a", "b", "a"])
        assert not col.numeric
        assert col.values.dtype == object

    def test_mixed_values_are_categorical(self):
        col = Column("x", [1, "a", 2])
        assert not col.numeric

    def test_explicit_numeric_flag_overrides_inference(self):
        col = Column("x", [1, 2, 3], numeric=False)
        assert not col.numeric

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("", [1, 2])

    def test_bool_values_are_numeric(self):
        col = Column("flag", [True, False, True])
        assert col.numeric
        assert col.values[0] == 1.0

    def test_all_missing_column_is_categorical(self):
        col = Column("x", [None, None])
        assert not col.numeric


class TestMissingValues:
    def test_none_becomes_nan_in_numeric(self):
        col = Column("x", [1.0, None, 3.0])
        assert np.isnan(col.values[1])
        assert col.n_missing() == 1

    def test_none_preserved_in_categorical(self):
        col = Column("x", ["a", None, "b"])
        assert col.values[1] is None
        assert col.n_missing() == 1

    def test_nan_counts_as_missing_categorical(self):
        col = Column("x", ["a", float("nan"), "b"])
        assert col.n_missing() == 1


class TestOperations:
    def test_len_and_iter(self):
        col = Column("x", [1, 2, 3])
        assert len(col) == 3
        assert list(col) == [1.0, 2.0, 3.0]

    def test_take_with_indices(self):
        col = Column("x", [10, 20, 30, 40])
        taken = col.take([0, 2])
        assert list(taken) == [10.0, 30.0]
        assert taken.name == "x"

    def test_take_with_boolean_mask(self):
        col = Column("x", ["a", "b", "c"])
        taken = col.take(np.array([True, False, True]))
        assert list(taken) == ["a", "c"]

    def test_unique_sorted_without_missing(self):
        col = Column("x", ["b", "a", None, "b"])
        assert col.unique() == ["a", "b"]

    def test_unique_numeric(self):
        col = Column("x", [3, 1, 2, 1, None])
        assert col.unique() == [1.0, 2.0, 3.0]

    def test_value_counts(self):
        col = Column("x", ["a", "b", "a", None])
        assert col.value_counts() == {"a": 2, "b": 1}

    def test_as_float_label_encodes_categoricals(self):
        col = Column("x", ["b", "a", "b"])
        encoded = col.as_float()
        # 'a' -> 0, 'b' -> 1 (sorted order)
        assert list(encoded) == [1.0, 0.0, 1.0]

    def test_as_float_missing_is_nan(self):
        encoded = Column("x", ["a", None]).as_float()
        assert np.isnan(encoded[1])

    def test_rename(self):
        col = Column("x", [1, 2]).rename("y")
        assert col.name == "y"

    def test_equality(self):
        assert Column("x", [1, 2]) == Column("x", [1, 2])
        assert Column("x", [1, 2]) != Column("x", [1, 3])
        assert Column("x", [1, 2]) != Column("y", [1, 2])

    def test_equality_with_nan(self):
        assert Column("x", [1.0, None]) == Column("x", [1.0, None])
