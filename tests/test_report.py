"""Tests for the benchmark-results report generator."""

import json

from repro.experiments.report import build_report, load_results, write_report


def _write_payload(directory, name, rows, **extra):
    payload = {"benchmark": name, "rows": rows, **extra}
    (directory / f"{name}.json").write_text(json.dumps(payload))


class TestLoadResults:
    def test_missing_directory_returns_empty(self, tmp_path):
        assert load_results(tmp_path / "nope") == []

    def test_loads_all_payloads_sorted(self, tmp_path):
        _write_payload(tmp_path, "b_second", [{"x": 2}])
        _write_payload(tmp_path, "a_first", [{"x": 1}])
        payloads = load_results(tmp_path)
        assert [p["benchmark"] for p in payloads] == ["a_first", "b_second"]


class TestBuildReport:
    def test_empty_report_mentions_how_to_run(self, tmp_path):
        text = build_report(tmp_path)
        assert "pytest benchmarks/" in text

    def test_rows_rendered_as_table(self, tmp_path):
        _write_payload(tmp_path, "fig9", [{"k": 1, "coverage": 0.5},
                                          {"k": 3, "coverage": 1.0}],
                       paper_reference="Figure 9",
                       expected_shape="coverage grows with k")
        text = build_report(tmp_path, title="Results")
        assert text.startswith("# Results")
        assert "## fig9" in text
        assert "Reproduces: Figure 9" in text
        assert "coverage grows with k" in text
        assert "| k | coverage |" in text
        assert "| 3 | 1 |" in text

    def test_heterogeneous_row_keys_merged(self, tmp_path):
        _write_payload(tmp_path, "mixed", [{"a": 1}, {"b": 2.5}])
        text = build_report(tmp_path)
        assert "| a | b |" in text

    def test_write_report_creates_file(self, tmp_path):
        _write_payload(tmp_path, "fig1", [{"a": 1}])
        out = write_report(tmp_path, tmp_path / "report.md")
        assert out.exists()
        assert "## fig1" in out.read_text()
