"""Unit tests for design-matrix encoding and CSV round-trips."""

import numpy as np
import pytest

from repro.dataframe import Table, design_matrix, one_hot, read_csv, write_csv


class TestOneHot:
    def test_drop_first_reference_level(self, simple_table):
        matrix, names = one_hot(simple_table, "Continent")
        # Two continents -> one indicator column (reference level dropped).
        assert matrix.shape == (6, 1)
        assert names == ["Continent=N. America"]

    def test_keep_all_levels(self, simple_table):
        matrix, names = one_hot(simple_table, "Country", drop_first=False)
        assert matrix.shape == (6, 3)
        assert matrix.sum() == 6  # each row has exactly one indicator set

    def test_single_level_column(self):
        table = Table.from_columns({"x": ["a", "a"], "y": [1.0, 2.0]})
        matrix, names = one_hot(table, "x")
        assert matrix.shape[1] == 1  # not dropped below one column


class TestDesignMatrix:
    def test_mixed_attributes(self, simple_table):
        matrix, names = design_matrix(simple_table, ["Age", "Continent"])
        assert matrix.shape == (6, 2)
        assert names[0] == "Age"

    def test_intercept(self, simple_table):
        matrix, names = design_matrix(simple_table, ["Age"], add_intercept=True)
        assert names[0] == "intercept"
        assert np.all(matrix[:, 0] == 1.0)

    def test_missing_numeric_imputed_with_mean(self):
        table = Table.from_columns({"x": [1.0, None, 3.0]})
        matrix, _ = design_matrix(table, ["x"])
        assert matrix[1, 0] == pytest.approx(2.0)

    def test_empty_attribute_list(self, simple_table):
        matrix, names = design_matrix(simple_table, [])
        assert matrix.shape == (6, 0)
        assert names == []


class TestCSV:
    def test_round_trip(self, tmp_path, simple_table):
        path = tmp_path / "table.csv"
        write_csv(simple_table, path)
        loaded = read_csv(path)
        assert loaded.n_rows == simple_table.n_rows
        assert loaded.attributes == simple_table.attributes
        assert loaded.column("Salary").numeric
        assert not loaded.column("Country").numeric
        assert loaded.avg("Salary") == pytest.approx(simple_table.avg("Salary"))

    def test_missing_values_round_trip(self, tmp_path):
        table = Table.from_columns({"a": [1.0, None], "b": ["x", None]})
        path = tmp_path / "missing.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert np.isnan(loaded.column("a").values[1])
        assert loaded.column("b").values[1] is None

    def test_integer_preservation(self, tmp_path):
        table = Table.from_columns({"n": [1, 2, 3]})
        path = tmp_path / "ints.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("n").numeric


class TestCSVKinds:
    def test_all_missing_columns_keep_their_kind(self, tmp_path):
        from repro.dataframe import Column

        table = Table([
            Column("num", np.array([np.nan, np.nan]), numeric=True),
            Column("cat", [None, None], numeric=False),
        ])
        path = tmp_path / "allmissing.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("num").numeric
        assert not loaded.column("cat").numeric
        assert loaded == table

    def test_round_trip_equality_mixed_missing(self, tmp_path, simple_table):
        path = tmp_path / "rt.csv"
        write_csv(simple_table, path)
        assert read_csv(path).column("Age").numeric

    def test_streamed_encoding_matches_column_factorize(self, tmp_path):
        rows = [["x", "v"], ["b", "1"], ["a", ""], ["b", "2.5"], ["", "nan"], ["c", "3"]]
        path = tmp_path / "enc.csv"
        with path.open("w", newline="") as handle:
            import csv as _csv
            _csv.writer(handle).writerows(rows)
        loaded = read_csv(path)
        reference = Table.from_columns({
            "x": ["b", "a", "b", None, "c"],
            "v": [1, None, 2.5, None, 3],
        })
        assert loaded.column("x").vocab == reference.column("x").vocab
        assert (loaded.column("x").codes == reference.column("x").codes).all()
        assert loaded == reference

    def test_short_rows_padded_with_missing(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b\n1,x\n2\n")
        loaded = read_csv(path)
        assert loaded.n_rows == 2
        assert loaded.column("b").values[1] is None
