"""Unit tests for the causal DAG structure."""

import pytest

from repro.graph import CausalDAG, dag_statistics, structural_hamming_distance


@pytest.fixture
def so_dag():
    """The example DAG of Figure 3."""
    return CausalDAG.from_dict({
        "Education": ["Country", "Gender"],
        "Role": ["Education", "Age", "Major", "YearsCoding"],
        "Salary": ["Country", "Role", "Education", "Age", "Gender", "Ethnicity"],
        "YearsCoding": ["Age"],
        "Major": [],
        "Country": [],
        "Gender": [],
        "Ethnicity": [],
        "Age": [],
    })


class TestConstruction:
    def test_nodes_and_edges(self, so_dag):
        assert "Salary" in so_dag
        assert so_dag.has_edge("Role", "Salary")
        assert not so_dag.has_edge("Salary", "Role")

    def test_self_loop_rejected(self):
        dag = CausalDAG()
        with pytest.raises(ValueError):
            dag.add_edge("A", "A")

    def test_cycle_rejected(self):
        dag = CausalDAG(edges=[("A", "B"), ("B", "C")])
        with pytest.raises(ValueError):
            dag.add_edge("C", "A")

    def test_duplicate_edges_idempotent(self):
        dag = CausalDAG(edges=[("A", "B"), ("A", "B")])
        assert dag.n_edges == 1

    def test_from_dict_and_to_dict_round_trip(self, so_dag):
        rebuilt = CausalDAG.from_dict(so_dag.to_dict())
        assert rebuilt == so_dag

    def test_copy_is_independent(self, so_dag):
        copy = so_dag.copy()
        copy.remove_edge("Role", "Salary")
        assert so_dag.has_edge("Role", "Salary")
        assert not copy.has_edge("Role", "Salary")


class TestQueries:
    def test_parents_children(self, so_dag):
        assert so_dag.parents("Role") == {"Education", "Age", "Major", "YearsCoding"}
        assert "Salary" in so_dag.children("Role")

    def test_ancestors(self, so_dag):
        ancestors = so_dag.ancestors("Salary")
        assert {"Country", "Gender", "Age", "Education", "Role"} <= ancestors
        assert "Salary" not in ancestors

    def test_descendants(self, so_dag):
        assert so_dag.descendants("Age") == {"Role", "Salary", "YearsCoding"}

    def test_topological_order(self, so_dag):
        order = so_dag.topological_order()
        assert order.index("Education") < order.index("Role")
        assert order.index("Role") < order.index("Salary")
        assert len(order) == len(so_dag.nodes)

    def test_causal_path(self, so_dag):
        assert so_dag.has_causal_path("Age", "Salary")
        assert not so_dag.has_causal_path("Salary", "Age")

    def test_causally_relevant(self, so_dag):
        relevant = so_dag.causally_relevant("Salary")
        assert "Major" in relevant  # Major -> Role -> Salary
        assert "Salary" not in relevant

    def test_subgraph(self, so_dag):
        sub = so_dag.subgraph(["Age", "Role", "Salary"])
        assert set(sub.nodes) == {"Age", "Role", "Salary"}
        assert sub.has_edge("Role", "Salary")
        assert not sub.has_edge("Education", "Role")


class TestStatistics:
    def test_dag_statistics(self, so_dag):
        stats = dag_statistics(so_dag, name="figure3")
        assert stats["nodes"] == 9
        assert stats["edges"] == so_dag.n_edges
        assert 0 < stats["density"] < 1

    def test_density_of_empty_graph(self):
        assert dag_statistics(CausalDAG(["A"]))["density"] == 0.0

    def test_structural_hamming_distance_identical(self, so_dag):
        assert structural_hamming_distance(so_dag, so_dag) == 0

    def test_structural_hamming_distance_counts_differences(self):
        a = CausalDAG(edges=[("A", "B"), ("B", "C")])
        b = CausalDAG(edges=[("A", "B"), ("C", "B"), ("A", "C")])
        # B->C reversed (1) plus A->C added (1)
        assert structural_hamming_distance(a, b) == 2
