"""Tests for summary export (JSON / Markdown) and ASCII visualisation."""

import json

import pytest

from repro.causal import EffectEstimate
from repro.core import (
    ExplanationPattern,
    ExplanationSummary,
    pattern_from_dict,
    pattern_to_dict,
    summary_to_dict,
    summary_to_json,
    summary_to_markdown,
)
from repro.dataframe import Pattern
from repro.mining.grouping import GroupingPattern
from repro.mining.treatments import TreatmentCandidate
from repro.sql import AggregateView, GroupByAvgQuery
from repro.viz import annotated_view_barchart, view_barchart


@pytest.fixture
def summary(small_view):
    grouping = GroupingPattern(Pattern.of(("Continent", "=", "Asia")),
                               frozenset([("India",), ("China",)]))
    positive = TreatmentCandidate(Pattern.of(("Role", "=", "Data Scientist")),
                                  EffectEstimate(40.0, 5.0, 0.001, 30, 30))
    negative = TreatmentCandidate(Pattern.of(("Education", "=", "B.Sc.")),
                                  EffectEstimate(-15.0, 4.0, 0.004, 20, 40))
    pattern = ExplanationPattern(grouping, positive, negative)
    return ExplanationSummary([pattern], tuple(small_view.group_keys()), k=3,
                              theta=0.6, n_candidates=2)


class TestPatternSerialisation:
    def test_round_trip(self):
        pattern = Pattern.of(("Age", "<", 35), ("Education", "=", "MS"))
        assert pattern_from_dict(pattern_to_dict(pattern)) == pattern

    def test_dict_shape(self):
        spec = pattern_to_dict(Pattern.of(("Age", ">=", 55)))
        assert spec == [{"attribute": "Age", "op": ">=", "value": 55}]


class TestSummaryExport:
    def test_summary_to_dict_fields(self, summary):
        payload = summary_to_dict(summary)
        assert payload["k"] == 3
        assert payload["coverage"] == pytest.approx(2 / 3)
        assert len(payload["patterns"]) == 1
        entry = payload["patterns"][0]
        assert entry["positive"]["cate"] == 40.0
        assert entry["negative"]["p_value"] == 0.004
        assert sorted(entry["covered_groups"]) == [["China"], ["India"]]

    def test_summary_to_json_parses(self, summary):
        parsed = json.loads(summary_to_json(summary))
        assert parsed["total_explainability"] == pytest.approx(55.0)

    def test_summary_to_markdown_structure(self, summary):
        text = summary_to_markdown(summary, outcome="salary")
        assert text.startswith("# Causal explanation summary")
        assert "## Insight 1" in text
        assert "| positive |" in text and "| negative |" in text
        assert "Covers: China, India" in text

    def test_markdown_handles_missing_direction(self, small_view):
        grouping = GroupingPattern(Pattern.of(("Continent", "=", "Asia")),
                                   frozenset([("India",)]))
        pattern = ExplanationPattern(grouping,
                                     TreatmentCandidate(Pattern.of(("Role", "=", "QA")),
                                                        EffectEstimate(5.0, 1.0, 0.01, 10, 10)))
        summary = ExplanationSummary([pattern], tuple(small_view.group_keys()),
                                     k=1, theta=0.3)
        assert "| negative | — | — | — |" in summary_to_markdown(summary)


class TestVisualisation:
    def test_barchart_contains_every_group(self, small_view):
        chart = view_barchart(small_view)
        for group in small_view:
            assert group.label() in chart

    def test_barchart_orders_by_average(self, small_view):
        lines = view_barchart(small_view).splitlines()
        assert lines[0].startswith("US")  # highest average salary first

    def test_annotated_barchart_markers_and_legend(self, small_view, summary):
        chart = annotated_view_barchart(small_view, summary)
        assert "legend:" in chart
        assert "Continent == 'Asia'" in chart
        # US is not covered by the single Asia pattern.
        us_line = next(line for line in chart.splitlines() if line.startswith("US"))
        assert "·" in us_line

    def test_empty_view_handled(self, simple_table):
        query = GroupByAvgQuery(group_by="Country", average="Salary",
                                where=Pattern.of(("Age", ">", 200)))
        view = AggregateView(simple_table, query)
        assert view_barchart(view) == "(empty view)"
