"""Shared fixtures for the test suite.

The fixtures keep dataset sizes deliberately small so the whole suite runs in
well under a minute; the benchmarks exercise realistic sizes.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:  # allow running the tests without installation
    sys.path.insert(0, str(SRC))

from repro.core import CauSumXConfig  # noqa: E402
from repro.dataframe import Column, Pattern, Table  # noqa: E402
from repro.graph import CausalDAG  # noqa: E402
from repro.mining.treatments import TreatmentMinerConfig  # noqa: E402
from repro.sql import AggregateView, GroupByAvgQuery  # noqa: E402


@pytest.fixture
def simple_table() -> Table:
    """A tiny mixed-type table mirroring the paper's Table 1 shape."""
    return Table.from_rows([
        {"Country": "US", "Continent": "N. America", "Gender": "Male",
         "Age": 26, "Role": "Data Scientist", "Education": "PhD", "Salary": 180.0},
        {"Country": "US", "Continent": "N. America", "Gender": "Non-binary",
         "Age": 32, "Role": "QA developer", "Education": "B.Sc.", "Salary": 83.0},
        {"Country": "India", "Continent": "Asia", "Gender": "Male",
         "Age": 29, "Role": "C-suite executive", "Education": "B.Sc.", "Salary": 24.0},
        {"Country": "India", "Continent": "Asia", "Gender": "Female",
         "Age": 25, "Role": "Back-end developer", "Education": "M.S.", "Salary": 7.5},
        {"Country": "China", "Continent": "Asia", "Gender": "Male",
         "Age": 21, "Role": "Back-end developer", "Education": "B.Sc.", "Salary": 19.0},
        {"Country": "China", "Continent": "Asia", "Gender": "Female",
         "Age": 41, "Role": "Data Scientist", "Education": "PhD", "Salary": 42.0},
    ], name="so_sample")


@pytest.fixture
def confounded_table() -> Table:
    """A 2000-row table with a known confounded treatment effect (true ATE = 5)."""
    rng = np.random.default_rng(0)
    n = 2000
    z = rng.integers(0, 3, n)
    t = (rng.random(n) < 0.2 + 0.25 * z).astype(int)
    y = 5.0 * t + 2.0 * z + rng.normal(0, 1, n)
    group = np.where(np.arange(n) % 2 == 0, "even", "odd")
    return Table([
        Column("Z", [int(v) for v in z], numeric=False),
        Column("T", [int(v) for v in t], numeric=False),
        Column("G", group, numeric=False),
        Column("Y", [float(v) for v in y], numeric=True),
    ], name="confounded")


@pytest.fixture
def confounded_dag() -> CausalDAG:
    return CausalDAG.from_dict({"T": ["Z"], "Y": ["T", "Z"], "G": []})


@pytest.fixture
def chain_dag() -> CausalDAG:
    """A -> B -> C with a confounder U -> A, U -> C."""
    return CausalDAG.from_dict({"B": ["A"], "C": ["B", "U"], "A": ["U"], "U": []})


@pytest.fixture
def small_view(simple_table) -> AggregateView:
    query = GroupByAvgQuery(group_by="Country", average="Salary")
    return AggregateView(simple_table, query)


@pytest.fixture(scope="session")
def fast_config() -> CauSumXConfig:
    """Configuration tuned for small fixtures: shallow lattice, tiny group sizes."""
    return CauSumXConfig(
        k=3, theta=0.75, apriori_threshold=0.05, sample_size=None,
        min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                       significance_level=1.0,
                                       max_values_per_attribute=8),
    )


@pytest.fixture(scope="session")
def so_bundle():
    """A small Stack-Overflow-like dataset shared across integration tests."""
    from repro.datasets import make_stackoverflow

    return make_stackoverflow(n=800, seed=7)


@pytest.fixture(scope="session")
def synthetic_bundle():
    from repro.datasets import make_synthetic

    return make_synthetic(n=400, n_grouping=2, n_treatment=3, seed=3)


@pytest.fixture
def coverage_problem():
    """A small max-cover instance with a known optimum."""
    from repro.optimize import CoverageILP

    groups = ["g1", "g2", "g3", "g4", "g5"]
    coverage = [
        frozenset(["g1", "g2"]),
        frozenset(["g3", "g4"]),
        frozenset(["g5"]),
        frozenset(["g1", "g2", "g3"]),
        frozenset(["g4", "g5"]),
    ]
    weights = [10.0, 8.0, 3.0, 6.0, 5.0]
    return CoverageILP(weights, coverage, groups, k=2, theta=0.8)
