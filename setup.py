"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists only so
that legacy tooling (and offline environments without the ``wheel`` package,
where PEP 660 editable installs are unavailable) can still do
``python setup.py develop`` or ``pip install .``.
"""

from setuptools import setup

setup()
