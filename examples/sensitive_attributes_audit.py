"""Bias audit: restrict treatments to sensitive attributes (Figure 6).

CauSumX can be pointed at a restricted treatment-attribute set.  Restricting to
sensitive attributes (gender, ethnicity, age) turns the explanation summary
into a disparity audit: which demographic factors causally influence salary in
which groups of countries, after adjusting for the confounders in the causal
DAG?  The script contrasts the causal estimates with naive group differences to
show why adjustment matters.

Run with:  python examples/sensitive_attributes_audit.py
"""

from repro import CauSumX, CauSumXConfig, Pattern, load_dataset, render_summary
from repro.causal import naive_difference_in_means

SENSITIVE = ["Gender", "Ethnicity", "AgeBand"]


def main() -> None:
    bundle = load_dataset("stackoverflow", n=2000, seed=0)
    config = CauSumXConfig(k=3, theta=1.0, sample_size=None)
    summary = CauSumX(bundle.table, bundle.dag, config).explain(
        bundle.query,
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=SENSITIVE,
    )
    print("Sensitive-attribute explanation summary:\n")
    print(render_summary(summary, outcome="annual salary"))

    print("\nAdjusted (causal) vs naive estimates for two sensitive treatments:\n")
    from repro.causal import CATEEstimator

    estimator = CATEEstimator(bundle.table, "Salary", dag=bundle.dag)
    for treatment in (Pattern.of(("Gender", "=", "Male")),
                      Pattern.of(("AgeBand", "=", "55+"))):
        adjusted = estimator.estimate(treatment)
        naive = naive_difference_in_means(
            bundle.table.column("Salary").values, treatment.evaluate(bundle.table))
        print(f"  {treatment!r}")
        print(f"    adjusted CATE : {adjusted.value:>10,.0f}  (p {adjusted.p_value:.2g})")
        print(f"    naive diff    : {naive.value:>10,.0f}")
    print("\nThe naive differences mix the demographic effect with role, country,")
    print("and education composition; the adjusted estimates isolate it.")


if __name__ == "__main__":
    main()
