"""Quickstart: summarized causal explanations for a salary-by-country view.

Runs the paper's running example end to end:

1. generate a Stack-Overflow-like developer survey,
2. evaluate ``SELECT Country, AVG(Salary) ... GROUP BY Country``,
3. ask CauSumX for at most three explanation patterns covering every country,
4. print the aggregate view and the natural-language explanation summary.

Run with:  python examples/quickstart.py
"""

from repro import CauSumX, CauSumXConfig, AggregateView, load_dataset, render_summary
from repro.viz import annotated_view_barchart


def main() -> None:
    bundle = load_dataset("stackoverflow", n=2000, seed=0)
    print(f"Dataset: {bundle.name} — {bundle.table.n_rows} tuples, "
          f"{bundle.table.n_cols} attributes")
    print(f"Query:   {bundle.query.to_sql()}\n")

    view = AggregateView(bundle.table, bundle.query)
    config = CauSumXConfig(k=3, theta=1.0, sample_size=None)
    summary = CauSumX(bundle.table, bundle.dag, config).explain(
        bundle.query,
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=bundle.treatment_attributes,
    )

    print("Aggregate view with insight markers (Figure 1 analogue):\n")
    print(annotated_view_barchart(view, summary))

    print("\nCauSumX explanation summary (Figure 2 analogue):\n")
    print(render_summary(summary, outcome="annual salary"))
    print("\nPer-step runtime (seconds):")
    for step, seconds in summary.timings.items():
        print(f"  {step:<20} {seconds:8.2f}")


if __name__ == "__main__":
    main()
