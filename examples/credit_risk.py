"""Case study: credit-risk explanations per loan purpose (German dataset, Figure 18).

The German dataset has no attributes functionally determined by the grouping
attribute (loan purpose), so every purpose needs its own explanation pattern.
The example also contrasts CauSumX with two associational baselines
(Explanation-Table and IDS) on the same data.

Run with:  python examples/credit_risk.py
"""

from repro import CauSumX, CauSumXConfig, load_dataset, render_summary
from repro.baselines import ExplanationTable, InterpretableDecisionSets


def main() -> None:
    bundle = load_dataset("german", n=1000, seed=0)
    config = CauSumXConfig(k=5, theta=0.5, sample_size=None,
                           include_singleton_groups=True)
    summary = CauSumX(bundle.table, bundle.dag, config).explain(
        bundle.query,
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=bundle.treatment_attributes,
    )
    print("CauSumX (causal, per-purpose) summary:\n")
    print(render_summary(summary, outcome="credit risk score"))

    attributes = bundle.treatment_attributes
    print("\nExplanation-Table (information gain, not causal):")
    et = ExplanationTable(n_patterns=5, max_length=2).fit(
        bundle.table, "RiskScore", attributes=attributes)
    for rule in et.rules:
        print(f"  {rule}")

    print("\nInterpretable Decision Sets (predictive rules, not causal):")
    ids = InterpretableDecisionSets(max_rules=5, max_length=2).fit(
        bundle.table, "RiskScore", attributes=attributes)
    for rule in ids.rules:
        print(f"  {rule}")
    print(f"  (classification accuracy {ids.accuracy(bundle.table, 'RiskScore'):.2f})")

    print("\nNote how the baselines surface frequent/high-information patterns,")
    print("while CauSumX surfaces treatments with high adjusted causal effects.")


if __name__ == "__main__":
    main()
