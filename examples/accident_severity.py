"""Case study: what causes severe car accidents in different US cities?

Reproduces the Accidents use case (Figure 7): the view is the average accident
severity per city, cities are grouped by region, and CauSumX searches for the
weather / infrastructure treatments with the strongest causal effect on
severity in each region.

Run with:  python examples/accident_severity.py
"""

from repro import AggregateView, CauSumX, CauSumXConfig, load_dataset, render_summary


def main() -> None:
    bundle = load_dataset("accidents", n=4000, seed=0)
    view = AggregateView(bundle.table, bundle.query)

    print(f"{view.m} cities; average severity ranges "
          f"{min(g.average for g in view):.2f}–{max(g.average for g in view):.2f}\n")

    config = CauSumXConfig(k=4, theta=1.0, sample_size=None)
    summary = CauSumX(bundle.table, bundle.dag, config).explain(
        bundle.query,
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=bundle.treatment_attributes,
    )

    print(render_summary(summary, outcome="accident severity"))

    print("\nRegion → cities covered by each insight:")
    for i, pattern in enumerate(summary.sorted_by_weight(), 1):
        cities = sorted(key[0] for key in pattern.covered_groups)
        preview = ", ".join(cities[:4]) + ("…" if len(cities) > 4 else "")
        print(f"  insight {i}: {pattern.grouping_pattern!r}  ({preview})")


if __name__ == "__main__":
    main()
