"""Using CauSumX on your own CSV data, with and without a known causal DAG.

The script writes a small marketing dataset to CSV, loads it back through the
library's CSV reader, discovers a causal DAG with the PC algorithm, and
compares the explanation summaries obtained with the discovered DAG vs the
hand-specified one (the Section 6.6 experiment in miniature).

Run with:  python examples/custom_data_and_dag.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    CausalDAG,
    CauSumX,
    CauSumXConfig,
    GroupByAvgQuery,
    Table,
    read_csv,
    render_summary,
    write_csv,
)
from repro.discovery import pc_algorithm


def make_marketing_table(n: int = 1500, seed: int = 0) -> Table:
    """Campaign revenue data: revenue is driven by channel and discount, confounded by segment."""
    rng = np.random.default_rng(seed)
    segment = rng.choice(["Consumer", "SMB", "Enterprise"], size=n, p=[0.5, 0.3, 0.2])
    region = rng.choice(["NA", "EMEA", "APAC"], size=n)
    tier = np.where(region == "NA", "Tier-1", np.where(region == "EMEA", "Tier-1", "Tier-2"))
    channel = np.where((segment == "Enterprise") & (rng.random(n) < 0.7), "DirectSales",
                       rng.choice(["Email", "Social", "DirectSales"], size=n))
    discount = np.where(rng.random(n) < 0.3, "Yes", "No")
    revenue = (
        100.0
        + np.where(segment == "Enterprise", 220.0, np.where(segment == "SMB", 80.0, 0.0))
        + np.where(channel == "DirectSales", 90.0, np.where(channel == "Email", 20.0, 0.0))
        + np.where(discount == "Yes", -35.0, 0.0)
        + np.where(tier == "Tier-1", 25.0, 0.0)
        + rng.normal(0, 30, n)
    )
    return Table.from_columns({
        "Region": list(region), "Tier": list(tier), "Segment": list(segment),
        "Channel": list(channel), "Discount": list(discount),
        "Revenue": [float(v) for v in revenue],
    }, name="marketing")


def main() -> None:
    table = make_marketing_table()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "marketing.csv"
        write_csv(table, path)
        table = read_csv(path)  # round-trip through CSV as a user would
    query = GroupByAvgQuery(group_by="Region", average="Revenue", table_name="marketing")

    expert_dag = CausalDAG.from_dict({
        "Tier": ["Region"],
        "Channel": ["Segment"],
        "Revenue": ["Segment", "Channel", "Discount", "Tier"],
        "Segment": [], "Discount": [], "Region": [],
    })
    discovered_dag = pc_algorithm(table)
    print(f"Expert DAG: {expert_dag.n_edges} edges; "
          f"PC-discovered DAG: {discovered_dag.n_edges} edges\n")

    config = CauSumXConfig(k=2, theta=1.0, sample_size=None)
    for label, dag in (("expert DAG", expert_dag), ("PC-discovered DAG", discovered_dag)):
        summary = CauSumX(table, dag, config).explain(query)
        print(f"--- Summary with the {label} ---")
        print(render_summary(summary, outcome="campaign revenue"))
        print()


if __name__ == "__main__":
    main()
