"""Figure 10 — precision/recall of the grouping and treatment mining algorithms
against Brute-Force on the synthetic dataset (ground truth known)."""

from conftest import record_rows

from repro.experiments import grouping_precision_recall, treatment_precision_recall


def test_fig10a_grouping_accuracy(benchmark):
    def run():
        return grouping_precision_recall([2, 3, 4, 5], n=1000, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 10(a)")


def test_fig10b_treatment_accuracy(benchmark):
    def run():
        return treatment_precision_recall([2, 3, 4], n=600,
                                          n_grouping_patterns=10, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 10(b)")
