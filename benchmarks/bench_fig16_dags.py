"""Figures 16/23 — explainability and treatment-ranking agreement when the
causal DAG is replaced by discovered DAGs (PC, FCI, LiNGAM) or No-DAG."""

from conftest import bench_config, record_rows

from repro.experiments import dag_sensitivity


def test_fig16_german_dag_sensitivity(benchmark, german_bundle):
    def run():
        return dag_sensitivity(german_bundle,
                               methods=("ground_truth", "PC", "FCI", "LiNGAM", "No-DAG"),
                               config=bench_config(theta=0.5,
                                                   include_singleton_groups=True),
                               n_treatments=15)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 16/23 (German)")


def test_fig16_adult_dag_sensitivity(benchmark, adult_bundle):
    def run():
        return dag_sensitivity(adult_bundle,
                               methods=("ground_truth", "PC", "LiNGAM", "No-DAG"),
                               config=bench_config(), n_treatments=15)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 16/23 (Adult)",
                expected_shape="every discovery algorithm beats No-DAG on Kendall tau")
