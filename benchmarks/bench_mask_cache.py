"""Mask-cache engine benchmark — end-to-end ``CauSumX.explain`` speedup.

Runs the paper's stackoverflow running example twice with identical
configuration — once on the legacy uncached path (every (grouping, treatment)
pair re-evaluates its patterns against the table from scratch) and once
through the shared pattern-evaluation engine (memoized predicate masks +
bound sub-populations) — and verifies that

* the rendered explanation summaries are byte-identical, and
* the cached run is at least ``MIN_SPEEDUP``× faster.

The floor was 2× when a cold predicate mask paid a per-row Python-loop tax.
Since the dictionary-encoded columnar core vectorized cold masks (see
``bench_columnar_kernels.py``), the uncached baseline itself is ~8× faster,
so the cache's *relative* margin shrank to the work it still deduplicates
(bound sub-populations, shared design matrices, repeated masks).  The floor
is 1.25× accordingly — the gate still catches a cache regression, measured
against a much faster baseline.

Usable both as a pytest-benchmark test (``pytest benchmarks/bench_mask_cache.py``)
and as a standalone script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_mask_cache.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import CauSumX, CauSumXConfig, render_summary  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.mining.treatments import TreatmentMinerConfig  # noqa: E402

MIN_SPEEDUP = 1.25


def _config(**overrides) -> CauSumXConfig:
    config = CauSumXConfig(
        k=5, theta=0.75, apriori_threshold=0.1, sample_size=None,
        min_group_size=10,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=10,
                                       significance_level=0.05,
                                       max_values_per_attribute=10),
    )
    return config.with_overrides(**overrides)


def _explain(bundle, config):
    algorithm = CauSumX(bundle.table, bundle.dag, config)
    start = time.perf_counter()
    summary = algorithm.explain(bundle.query,
                                grouping_attributes=bundle.grouping_attributes,
                                treatment_attributes=bundle.treatment_attributes)
    return time.perf_counter() - start, summary


def run_comparison(n: int = 2000, n_jobs: int = 1) -> dict:
    """Explain the stackoverflow view cached vs. uncached and compare."""
    bundle = load_dataset("stackoverflow", n=n, seed=0)
    uncached_seconds, uncached = _explain(bundle, _config(use_mask_cache=False))
    cached_seconds, cached = _explain(bundle, _config(use_mask_cache=True,
                                                      n_jobs=n_jobs))
    uncached_text = render_summary(uncached, outcome="annual salary")
    cached_text = render_summary(cached, outcome="annual salary")
    return {
        "dataset": "stackoverflow",
        "rows": bundle.table.n_rows,
        "n_jobs": n_jobs,
        "uncached_seconds": round(uncached_seconds, 3),
        "cached_seconds": round(cached_seconds, 3),
        "speedup": round(uncached_seconds / max(cached_seconds, 1e-9), 2),
        "summaries_identical": cached_text == uncached_text,
        "n_patterns": len(cached),
        "summary_text": cached_text,
    }


def test_mask_cache_speedup(benchmark):
    """≥1.25× end-to-end speedup with byte-identical explanation summaries."""
    from conftest import record_rows

    row = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    summary_text = row.pop("summary_text")
    record_rows(benchmark, [row],
                paper_reference="Section 7 optimisations / ROADMAP scaling",
                expected_shape=f"speedup >= {MIN_SPEEDUP}x, identical summaries",
                summary_text=summary_text)
    assert row["summaries_identical"], "cached summary differs from uncached"
    assert row["speedup"] >= MIN_SPEEDUP, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small instance for CI (600 rows)")
    parser.add_argument("--rows", type=int, default=None,
                        help="dataset size (default: 2000, smoke: 600)")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="worker threads for the cached run")
    args = parser.parse_args(argv)
    n = args.rows if args.rows is not None else (600 if args.smoke else 2000)

    row = run_comparison(n=n, n_jobs=args.n_jobs)
    summary_text = row.pop("summary_text")
    print(f"stackoverflow n={row['rows']}  uncached {row['uncached_seconds']:.2f}s  "
          f"cached {row['cached_seconds']:.2f}s  speedup {row['speedup']:.2f}x  "
          f"identical={row['summaries_identical']}")
    print()
    print(summary_text)

    if not row["summaries_identical"]:
        print("FAIL: cached and uncached explanation summaries differ", file=sys.stderr)
        return 1
    if row["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {row['speedup']:.2f}x below the {MIN_SPEEDUP}x floor",
              file=sys.stderr)
        return 1
    print(f"\nOK: speedup {row['speedup']:.2f}x >= {MIN_SPEEDUP}x, summaries identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
