"""Columnar-kernel benchmark — vectorized vs. row-at-a-time data layer.

The dictionary-encoded columnar core replaced three per-row Python hot loops
with numpy kernels over ``int32`` code arrays:

* **cold categorical predicate masks** — ``codes == vocab_code(value)``
  instead of a list comprehension per row;
* **group-by view construction** — one factorized ``GroupByIndex``
  (``np.unique(..., return_inverse=True)``) instead of a dict of per-row
  appends for membership lists *and* averages;
* **design-matrix builds** — one-hot blocks by fancy-indexing codes instead
  of a per-row dictionary lookup per category.

This benchmark re-implements the pre-refactor row-at-a-time kernels verbatim
(the ``legacy_*`` functions below) on the stackoverflow bundle, checks that
the vectorized kernels produce *exactly equal* outputs, and asserts each is
at least ``MIN_SPEEDUP``× faster.

Usable both as a pytest-benchmark test
(``pytest benchmarks/bench_columnar_kernels.py``) and as a standalone script
for CI smoke runs (always writes its JSON to ``benchmarks/results/``)::

    PYTHONPATH=src python benchmarks/bench_columnar_kernels.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.dataframe import Op, Predicate, design_matrix  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402

MIN_SPEEDUP = 3.0
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Attributes used for the three kernels on the stackoverflow bundle.
PREDICATE_ATTRS = ["Country", "Role", "Education", "AgeBand", "Gender",
                   "Ethnicity", "YearsCoding", "Continent"]
GROUP_BY_ATTRS = ["Country"]
DESIGN_ATTRS = ["Country", "Role", "Education", "AgeBand", "Gender", "Salary"]


# --------------------------------------------------------------------------
# Legacy row-at-a-time reference kernels (pre-refactor implementations,
# reproduced verbatim so the speedup is measured against real history).
# --------------------------------------------------------------------------


def legacy_categorical_mask(values: np.ndarray, op: Op, target) -> np.ndarray:
    """Seed ``Predicate.evaluate`` categorical path: per-row list comprehension."""
    valid = np.array([v is not None for v in values], dtype=bool)
    if op is Op.EQ:
        comparison = np.array([v == target for v in values], dtype=bool)
    elif op is Op.NE:
        comparison = np.array([v != target for v in values], dtype=bool)
    else:  # pragma: no cover - benchmark uses EQ/NE only
        raise ValueError(op)
    return comparison & valid


def legacy_group_by(table, group_attrs, avg_attr):
    """Seed ``Table.group_indices`` + ``Table.groupby_avg``: per-row dict appends."""
    key_columns = [table.column(a).values for a in group_attrs]
    outcome = table.column(avg_attr).values.astype(np.float64)
    indices: dict[tuple, list] = {}
    groups: dict[tuple, list] = {}
    for i in range(table.n_rows):
        key = tuple(col[i] for col in key_columns)
        indices.setdefault(key, []).append(i)
        groups.setdefault(key, []).append(outcome[i])
    index_arrays = {k: np.asarray(v, dtype=np.int64) for k, v in indices.items()}
    results = []
    for key in sorted(groups, key=repr):
        values = np.asarray(groups[key], dtype=np.float64)
        valid = values[~np.isnan(values)]
        avg = float(valid.mean()) if valid.size else float("nan")
        results.append((key, avg, len(values)))
    return index_arrays, results


def legacy_one_hot(table, attribute, drop_first=True):
    """Seed ``one_hot``: per-row dictionary lookup per category."""
    column = table.column(attribute)
    categories = column.unique()
    if drop_first and len(categories) > 1:
        categories = categories[1:]
    matrix = np.zeros((table.n_rows, len(categories)), dtype=np.float64)
    index = {c: j for j, c in enumerate(categories)}
    for i, value in enumerate(column.values):
        j = index.get(value)
        if j is not None:
            matrix[i, j] = 1.0
    names = [f"{attribute}={c}" for c in categories]
    return matrix, names


def legacy_design_matrix(table, attributes, drop_first=True):
    """Seed ``design_matrix`` built on the per-row ``legacy_one_hot``."""
    blocks, names = [], []
    for attribute in attributes:
        column = table.column(attribute)
        if column.numeric:
            values = column.values.astype(np.float64).copy()
            missing = np.isnan(values)
            if missing.any():
                fill = values[~missing].mean() if (~missing).any() else 0.0
                values[missing] = fill
            blocks.append(values.reshape(-1, 1))
            names.append(attribute)
        else:
            encoded, feature_names = legacy_one_hot(table, attribute, drop_first)
            if encoded.shape[1]:
                blocks.append(encoded)
                names.extend(feature_names)
    if not blocks:
        return np.zeros((table.n_rows, 0)), []
    return np.hstack(blocks), names


# --------------------------------------------------------------------------
# Timed comparisons
# --------------------------------------------------------------------------


def _cold_predicates(table) -> list[Predicate]:
    predicates = []
    for attribute in PREDICATE_ATTRS:
        for value in table.domain(attribute):
            predicates.append(Predicate(attribute, Op.EQ, value))
            predicates.append(Predicate(attribute, Op.NE, value))
    return predicates


def bench_predicate_masks(table) -> dict:
    """Every (attribute, value) EQ/NE mask, evaluated cold (no cache)."""
    predicates = _cold_predicates(table)
    start = time.perf_counter()
    new_masks = [p.evaluate(table) for p in predicates]
    new_seconds = time.perf_counter() - start

    raw = {a: np.asarray(table.column(a).values, dtype=object)
           for a in PREDICATE_ATTRS}
    start = time.perf_counter()
    old_masks = [legacy_categorical_mask(raw[p.attribute], p.op, p.value)
                 for p in predicates]
    old_seconds = time.perf_counter() - start

    identical = all(np.array_equal(new, old)
                    for new, old in zip(new_masks, old_masks))
    return _row("cold_predicate_masks", old_seconds, new_seconds, identical,
                n_kernels=len(predicates))


def bench_group_by(table) -> dict:
    """Group-by view construction: membership lists + per-group averages."""
    start = time.perf_counter()
    index = table.group_index(GROUP_BY_ATTRS)
    new_indices = index.indices_by_key()
    outcome = table.column("Salary").values.astype(np.float64)
    averages, _ = index.averages(outcome)
    new_results = [(index.keys[g], float(averages[g]), int(index.sizes[g]))
                   for g in index.sorted_by_repr()]
    new_seconds = time.perf_counter() - start

    start = time.perf_counter()
    old_indices, old_results = legacy_group_by(table, GROUP_BY_ATTRS, "Salary")
    old_seconds = time.perf_counter() - start

    identical = (
        len(new_results) == len(old_results)
        # NaN-aware average comparison: an all-missing-outcome group averages
        # to NaN on both paths and must still count as identical.
        and all(new_key == old_key and new_size == old_size
                and (new_avg == old_avg
                     or (new_avg != new_avg and old_avg != old_avg))
                for (new_key, new_avg, new_size), (old_key, old_avg, old_size)
                in zip(new_results, old_results))
        and set(new_indices) == set(old_indices)
        and all(np.array_equal(new_indices[k], old_indices[k]) for k in old_indices)
    )
    return _row("group_by_construction", old_seconds, new_seconds, identical,
                n_groups=len(new_results))


def bench_design_matrix(table) -> dict:
    """Full mixed numeric/categorical design-matrix build."""
    start = time.perf_counter()
    new_matrix, new_names = design_matrix(table, DESIGN_ATTRS)
    new_seconds = time.perf_counter() - start

    start = time.perf_counter()
    old_matrix, old_names = legacy_design_matrix(table, DESIGN_ATTRS)
    old_seconds = time.perf_counter() - start

    identical = new_names == old_names and np.array_equal(new_matrix, old_matrix)
    return _row("design_matrix_build", old_seconds, new_seconds, identical,
                n_features=len(new_names))


def _row(kernel, old_seconds, new_seconds, identical, **extra) -> dict:
    return {
        "kernel": kernel,
        "legacy_seconds": round(old_seconds, 4),
        "vectorized_seconds": round(new_seconds, 4),
        "speedup": round(old_seconds / max(new_seconds, 1e-9), 2),
        "outputs_identical": bool(identical),
        **extra,
    }


def run_comparison(n: int = 20000, repeats: int = 3) -> list[dict]:
    """Time all three kernels on the stackoverflow bundle (best of ``repeats``)."""
    bundle = load_dataset("stackoverflow", n=n, seed=0)
    table = bundle.table
    rows = []
    for bench in (bench_predicate_masks, bench_group_by, bench_design_matrix):
        best = None
        for _ in range(repeats):
            row = bench(table)
            if best is None or row["speedup"] > best["speedup"]:
                best = row
        best["rows"] = table.n_rows
        rows.append(best)
    return rows


def _write_results(rows: list[dict]) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "bench_columnar_kernels.json"
    payload = {
        "benchmark": "bench_columnar_kernels",
        "rows": rows,
        "paper_reference": "ROADMAP scaling / data-layer vectorization",
        "expected_shape": f"speedup >= {MIN_SPEEDUP}x per kernel, identical outputs",
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


def test_columnar_kernel_speedups(benchmark):
    """≥3× on cold masks, group-by construction, and design-matrix builds."""
    from conftest import record_rows

    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_rows(benchmark, rows,
                paper_reference="ROADMAP scaling / data-layer vectorization",
                expected_shape=f"speedup >= {MIN_SPEEDUP}x per kernel, identical outputs")
    _write_results(rows)
    for row in rows:
        assert row["outputs_identical"], row
        assert row["speedup"] >= MIN_SPEEDUP, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small instance for CI (6000 rows)")
    parser.add_argument("--rows", type=int, default=None,
                        help="dataset size (default: 20000, smoke: 6000)")
    args = parser.parse_args(argv)
    n = args.rows if args.rows is not None else (6000 if args.smoke else 20000)

    rows = run_comparison(n=n)
    path = _write_results(rows)
    failed = False
    for row in rows:
        status = "OK " if (row["outputs_identical"]
                           and row["speedup"] >= MIN_SPEEDUP) else "FAIL"
        if status == "FAIL":
            failed = True
        print(f"{status} {row['kernel']:<24} legacy {row['legacy_seconds']:.4f}s  "
              f"vectorized {row['vectorized_seconds']:.4f}s  "
              f"speedup {row['speedup']:.1f}x  identical={row['outputs_identical']}")
    print(f"\nresults written to {path}")
    if failed:
        print(f"FAIL: a kernel is below the {MIN_SPEEDUP}x floor or outputs differ",
              file=sys.stderr)
        return 1
    print(f"OK: all kernels >= {MIN_SPEEDUP}x with identical outputs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
