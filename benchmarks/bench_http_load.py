"""HTTP serving-tier load benchmark — concurrency, latency, byte-identity.

Drives hundreds of concurrent clients against a live
:class:`repro.net.ReproHTTPServer` with the workload shape from ROADMAP
item 1 (many users, few datasets, highly repetitive queries, a trickle of
appends) and gates:

* **Byte-identical responses under concurrency**: every response collected
  during the storm equals — after stripping the wall-clock fields
  (``timings`` inside the result, the ``cached``/``coalesced`` serving
  flags) — the response a *serial replay* of the same per-client request
  streams produces against a fresh server stack.  Readers share one hot
  tenant (explanations are deterministic, so interleaving cannot show);
  each appender owns its tenant, so its version sequence is its own
  program order.

* **Zero shed below the admission threshold**: the queue is provisioned for
  the client count, so admission control must pass everything — 200
  concurrent clients, 0 × 429.

* **Latency and throughput floors**: p50 ≤ ``MAX_P50_SECONDS``, p99 ≤
  ``MAX_P99_SECONDS`` over per-request client-side latencies, and overall
  throughput ≥ ``MIN_THROUGHPUT`` requests/second.  The floors are
  conservative: the storm is cache-served (each distinct query is warmed
  once), so requests cost queue wait + dispatch, not mining time.

* **Lockwatch acyclicity under load**: a second, smaller burst runs against
  a stack built with lock watching enabled; the recorded acquisition-order
  graph must be acyclic.

Usable both as a pytest-benchmark test and as a standalone script for CI
smoke runs (writes ``benchmarks/results/bench_http_load.json``)::

    PYTHONPATH=src python benchmarks/bench_http_load.py [--smoke]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis import lockwatch  # noqa: E402
from repro.core import CauSumXConfig  # noqa: E402
from repro.datasets import make_stackoverflow  # noqa: E402
from repro.mining.treatments import TreatmentMinerConfig  # noqa: E402
from repro.net import TenantRegistry, create_server, serve_in_thread  # noqa: E402
from repro.service import handle_request  # noqa: E402

N_CLIENTS = 200          # concurrent reader clients (full run)
N_APPENDERS = 8          # concurrent appender clients, one tenant each
REQUESTS_PER_CLIENT = 4
APPENDS_PER_CLIENT = 2
SMOKE_CLIENTS = 24
SMOKE_APPENDERS = 4
MAX_P50_SECONDS = 0.50
MAX_P99_SECONDS = 5.00
MIN_THROUGHPUT = 30.0    # requests/second over the whole storm
MAX_INFLIGHT = 8
DATASET_ROWS = 400

QUERIES = (
    "SELECT Country, AVG(Salary) FROM SO GROUP BY Country",
    "SELECT Role, AVG(Salary) FROM SO GROUP BY Role",
    "SELECT Education, AVG(Salary) FROM SO GROUP BY Education",
    "SELECT Country, AVG(Salary) FROM SO WHERE Gender = 'Woman' "
    "GROUP BY Country",
)


def _config() -> CauSumXConfig:
    return CauSumXConfig(
        k=3, theta=0.5, apriori_threshold=0.1, sample_size=None,
        min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                       significance_level=0.05,
                                       max_values_per_attribute=8),
    )


def _make_registry(bundle) -> TenantRegistry:
    return TenantRegistry.single_dataset(
        bundle.name, bundle.table, dag=bundle.dag, config=_config(),
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=bundle.treatment_attributes,
        tenant_budget_bytes=32 << 20, max_tenants=256, max_workers=2,
        summary_cache_size=16)


def _normalize(raw: bytes) -> str:
    """Canonical response bytes with the wall-clock-dependent fields removed."""
    payload = json.loads(raw)
    payload.pop("cached", None)
    payload.pop("coalesced", None)
    if isinstance(payload.get("result"), dict):
        payload["result"].pop("timings", None)
    return json.dumps(payload, sort_keys=True)


def _client_streams(n_clients: int, n_appenders: int, bundle) -> list[list]:
    """Per-client request streams: ``(tenant, path, request_dict)`` tuples."""
    row = bundle.table.take([0]).to_rows()[0]
    streams = []
    for i in range(n_clients):
        stream = []
        for j in range(REQUESTS_PER_CLIENT):
            query = QUERIES[(i + j) % len(QUERIES)]
            stream.append(("default", "/v1/explain",
                           {"op": "explain", "query": query,
                            "id": i * REQUESTS_PER_CLIENT + j}))
        streams.append(stream)
    for i in range(n_appenders):
        tenant = f"writer-{i}"
        streams.append([(tenant, "/v1/append_rows",
                         {"op": "append_rows", "rows": [row]})
                        for _ in range(APPENDS_PER_CLIENT)])
    return streams


def _run_storm(server, streams: list[list]):
    """Fire every client stream concurrently; collect latencies + responses."""
    host, port = server.server_address[:2]
    start = threading.Barrier(len(streams))
    latencies: list[float] = []
    responses: list[list] = [None] * len(streams)
    errors: list = []
    lock = threading.Lock()

    def client(index: int, stream: list):
        mine = []
        try:
            conn = http.client.HTTPConnection(host, port, timeout=120)
            start.wait(timeout=120)
            for tenant, path, request in stream:
                begin = time.perf_counter()
                conn.request("POST", path, body=json.dumps(request),
                             headers={"X-Repro-Tenant": tenant})
                reply = conn.getresponse()
                raw = reply.read()
                elapsed = time.perf_counter() - begin
                mine.append((reply.status, raw))
                with lock:
                    latencies.append(elapsed)
            conn.close()
            responses[index] = mine
        except BaseException as exc:  # pragma: no cover - surfaced in gates
            with lock:
                errors.append(f"client {index}: {exc!r}")

    threads = [threading.Thread(target=client, args=(i, stream))
               for i, stream in enumerate(streams)]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.perf_counter() - begin
    return wall, latencies, responses, errors


def _serial_replay(streams: list[list], bundle) -> list[list]:
    """The same per-client streams against a fresh stack, one at a time."""
    registry = _make_registry(bundle)
    replayed = []
    for stream in streams:
        mine = []
        for tenant, _, request in stream:
            engine = registry.engine_for(tenant)
            response = handle_request(engine, registry.default_dataset,
                                      json.dumps(request))
            mine.append(_normalize(
                (json.dumps(response, default=str) + "\n").encode("utf-8")))
        replayed.append(mine)
    return replayed


def _lockwatch_burst(bundle, n_clients: int) -> dict:
    """A smaller concurrent burst over a lock-watched stack (untimed gate)."""
    watch = lockwatch.enable()
    watch.reset()
    try:
        registry = _make_registry(bundle)
        server = create_server(registry, "127.0.0.1", 0,
                               max_inflight=MAX_INFLIGHT,
                               max_queue=max(n_clients, 16))
        serve_in_thread(server)
        try:
            streams = _client_streams(n_clients, 2, bundle)
            _, _, responses, errors = _run_storm(server, streams)
            statuses = [status for mine in responses if mine
                        for status, _ in mine]
        finally:
            server.graceful_shutdown(drain_timeout=60.0)
        watch.assert_acyclic()
        return {"lockwatch_acyclic": not watch.violations,
                "lockwatch_acquisitions": watch.acquisitions,
                "lockwatch_errors": errors,
                "lockwatch_all_ok": bool(statuses)
                and all(s == 200 for s in statuses)}
    except lockwatch.LockOrderError as exc:
        return {"lockwatch_acyclic": False, "lockwatch_acquisitions": 0,
                "lockwatch_errors": [str(exc)], "lockwatch_all_ok": False}
    finally:
        watch.reset()
        lockwatch.disable()


def run_load(n_clients: int = N_CLIENTS,
             n_appenders: int = N_APPENDERS) -> dict:
    bundle = make_stackoverflow(n=DATASET_ROWS, seed=7)
    registry = _make_registry(bundle)
    server = create_server(registry, "127.0.0.1", 0,
                           max_inflight=MAX_INFLIGHT,
                           # Provisioned for the client count: nothing below
                           # the admission threshold may shed.
                           max_queue=n_clients + n_appenders)
    serve_in_thread(server)
    try:
        # Warm each distinct query once so the storm measures serving, not
        # first-compute mining time.
        warm_engine = registry.engine_for("default")
        for query in QUERIES:
            warm_engine.explain(registry.default_dataset, query)

        streams = _client_streams(n_clients, n_appenders, bundle)
        wall, latencies, responses, errors = _run_storm(server, streams)
        admission = server.admission.stats()
        metrics = server.metrics.snapshot()
    finally:
        server.graceful_shutdown(drain_timeout=60.0)

    statuses = [status for mine in responses if mine for status, _ in mine]
    normalized = [[_normalize(raw) for _, raw in mine] if mine else None
                  for mine in responses]
    replayed = _serial_replay(streams, bundle)
    mismatches = sum(
        1 for mine, theirs in zip(normalized, replayed)
        if mine is None or mine != theirs)

    total = len(statuses)
    lat = np.asarray(latencies, dtype=np.float64)
    row = {
        "clients": n_clients,
        "appenders": n_appenders,
        "requests": total,
        "errors": errors,
        "non_200": sum(1 for s in statuses if s != 200),
        "shed": admission["shed"],
        "peak_inflight": admission["peak_inflight"],
        "peak_queued": admission["peak_queued"],
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(total / max(wall, 1e-9), 1),
        "p50_seconds": round(float(np.percentile(lat, 50)), 4) if total else 0,
        "p99_seconds": round(float(np.percentile(lat, 99)), 4) if total else 0,
        "replay_mismatches": mismatches,
        "server_p99_seconds": metrics["latency_seconds"]["p99"],
    }
    row.update(_lockwatch_burst(bundle, n_clients=min(n_clients, 16)))
    return row


def _check(row: dict) -> list[str]:
    failures = []
    if row["errors"]:
        failures.append(f"client errors: {row['errors'][:3]}")
    if row["non_200"]:
        failures.append(f"{row['non_200']} non-200 response(s)")
    if row["shed"]:
        failures.append(f"{row['shed']} request(s) shed below the admission "
                        f"threshold (queue was provisioned for the load)")
    if row["replay_mismatches"]:
        failures.append(f"{row['replay_mismatches']} client stream(s) not "
                        f"byte-identical to the serial replay")
    if row["p50_seconds"] > MAX_P50_SECONDS:
        failures.append(f"p50 {row['p50_seconds']:.3f}s above the "
                        f"{MAX_P50_SECONDS}s ceiling")
    if row["p99_seconds"] > MAX_P99_SECONDS:
        failures.append(f"p99 {row['p99_seconds']:.3f}s above the "
                        f"{MAX_P99_SECONDS}s ceiling")
    if row["throughput_rps"] < MIN_THROUGHPUT:
        failures.append(f"throughput {row['throughput_rps']:.1f} req/s below "
                        f"the {MIN_THROUGHPUT} req/s floor")
    if not row["lockwatch_acyclic"]:
        failures.append("lock-order cycle observed under concurrent load")
    if not row["lockwatch_all_ok"]:
        failures.append(f"lock-watched burst failed: "
                        f"{row['lockwatch_errors'][:3]}")
    return failures


EXPECTED_SHAPE = (f"{N_CLIENTS} concurrent clients, 0 shed, byte-identical "
                  f"to serial replay, p50 <= {MAX_P50_SECONDS}s, "
                  f"p99 <= {MAX_P99_SECONDS}s, "
                  f">= {MIN_THROUGHPUT} req/s, lockwatch acyclic")


def test_http_load(benchmark):
    """Mixed explain/append storm: identical bytes, bounded latency, 0 shed."""
    from conftest import record_rows

    row = benchmark.pedantic(run_load,
                             kwargs={"n_clients": SMOKE_CLIENTS,
                                     "n_appenders": SMOKE_APPENDERS},
                             rounds=1, iterations=1)
    record_rows(benchmark, [row],
                paper_reference="ROADMAP item 1: concurrent serving tier",
                expected_shape=EXPECTED_SHAPE)
    assert not _check(row), (row, _check(row))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced client count for CI "
                             f"({SMOKE_CLIENTS} clients)")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--appenders", type=int, default=None)
    args = parser.parse_args(argv)
    n_clients = args.clients if args.clients is not None else \
        (SMOKE_CLIENTS if args.smoke else N_CLIENTS)
    n_appenders = args.appenders if args.appenders is not None else \
        (SMOKE_APPENDERS if args.smoke else N_APPENDERS)

    row = run_load(n_clients=n_clients, n_appenders=n_appenders)
    print(f"http load: {row['clients']} clients + {row['appenders']} "
          f"appenders, {row['requests']} requests in "
          f"{row['wall_seconds']:.2f}s ({row['throughput_rps']:.0f} req/s)")
    print(f"  latency: p50 {row['p50_seconds'] * 1000:.1f}ms  "
          f"p99 {row['p99_seconds'] * 1000:.1f}ms  "
          f"peak inflight {row['peak_inflight']}  "
          f"peak queued {row['peak_queued']}  shed {row['shed']}")
    print(f"  replay mismatches: {row['replay_mismatches']}  "
          f"lockwatch: {'acyclic' if row['lockwatch_acyclic'] else 'CYCLE'} "
          f"({row['lockwatch_acquisitions']} watched acquisitions)")

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {"benchmark": "bench_http_load", "rows": [row],
               "expected_shape": EXPECTED_SHAPE}
    with (results_dir / "bench_http_load.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)

    failures = _check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: {row['requests']} responses byte-identical to serial "
              f"replay, 0 shed, p99 {row['p99_seconds'] * 1000:.0f}ms, "
              f"{row['throughput_rps']:.0f} req/s, lockwatch acyclic")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
