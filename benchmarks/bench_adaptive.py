"""Adaptive planning benchmark — feedback re-planning + bitmap cracking (ISSUE 10).

Two gates for the ``repro.adapt`` subsystem:

* **Feedback-corrected re-planning ≥ ``MIN_REPLAN_SPEEDUP`` (1.5×)** on a
  skewed workload whose *initial* estimates are deliberately wrong: a
  numeric equality on a heavy-hitter value (90 % of rows) that the
  uniform-distinct assumption estimates near zero, so the frozen planner
  ranks it first and every later conjunct pays subset evaluation over 90 %
  of the table.  After a couple of observed executions the
  :class:`~repro.adapt.EstimateCorrector` replaces the estimate with the
  observed selectivity and the re-planned order collapses the candidate set
  immediately.

* **Hot-predicate bitmap serving ≥ ``MIN_BITMAP_SPEEDUP`` (3×)** for a
  repeated conjunctive WHERE over a sharded store: ordered-categorical
  comparisons over a ~1600-value vocabulary (whose kernel decides per vocab
  entry in Python) answered from committed per-shard packed bitmaps
  (``np.unpackbits`` + fancy indexing) after promotion — including a **cold
  restart** leg that reopens the store and serves from the manifest's
  committed bitmaps alone.

Every adaptive/bitmap result is asserted equal row-for-row to the unplanned
oracle, so neither speedup can come from answering a different question.

Usable both as a pytest-benchmark test and as a standalone script for CI
smoke runs (writes ``benchmarks/results/bench_adaptive.json``)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.adapt import (  # noqa: E402
    GLOBAL_CORRECTOR,
    GLOBAL_HEAT,
    adaptive_overrides,
)
from repro.dataframe import Op, Pattern, Predicate, Table  # noqa: E402
from repro.plan import oracle_mode, table_stats  # noqa: E402
from repro.plan.execute import planned_select_with_plan  # noqa: E402
from repro.storage import DatasetStore  # noqa: E402

MIN_REPLAN_SPEEDUP = 1.5
MIN_BITMAP_SPEEDUP = 3.0

HEAVY_VALUE = 1000.0


# ---------------------------------------------------------------------- gate (a)


N_SEGMENTS = 100


def _skewed_table(n: int) -> Table:
    """95 % of ``heavy`` equals one value among ~1000 distinct ones.

    The planner's uniform-distinct assumption estimates the equality at
    ~1/1000 while its true selectivity is 0.95 — the worst case for a
    frozen plan, which ranks it first (cheapest × most selective on paper)
    and drags 95 % of the rows through every later conjunct.
    """
    rng = np.random.default_rng(0)
    heavy = np.where(rng.random(n) < 0.95, HEAVY_VALUE,
                     rng.integers(0, 1000, n).astype(float))
    segments = [f"s{i:03d}" for i in range(N_SEGMENTS)]
    return Table.from_columns({
        "heavy": heavy,
        "segment": [segments[i] for i in rng.integers(0, len(segments), n)],
        "amount": rng.normal(0.0, 50.0, n),
        "channel": [("web", "app", "api", "ads")[i]
                    for i in rng.integers(0, 4, n)],
    }, name="skewed-estimates")


def _skewed_pattern(segment: int) -> Pattern:
    return Pattern([
        Predicate("heavy", Op.EQ, HEAVY_VALUE),         # est ~0.001, actual 0.95
        Predicate("segment", Op.EQ, f"s{segment:03d}"),  # exact 0.01
        Predicate("amount", Op.GE, -20.0),              # broad
        Predicate("channel", Op.NE, "web"),             # broad
    ])


def _run_workload(table: Table, queries, stats, feedback: bool) -> list:
    """Serve the workload; with ``feedback`` the corrector sees every plan."""
    incarnation = stats.incarnation
    results = []
    for pattern in queries:
        selected, plan = planned_select_with_plan(table, pattern, stats=stats)
        results.append(selected)
        if feedback and plan is not None:
            GLOBAL_CORRECTOR.observe_plan(incarnation, plan)
    return results


def run_replan_comparison(n: int = 200_000, n_queries: int = 40) -> dict:
    table = _skewed_table(n)
    queries = [_skewed_pattern(i % N_SEGMENTS) for i in range(n_queries)]
    with oracle_mode():
        oracle = [table.select(pattern) for pattern in queries]

    GLOBAL_CORRECTOR.reset()
    with adaptive_overrides(enabled=False):
        stats = table_stats(_skewed_table(n))
        start = time.perf_counter()
        frozen = _run_workload(table, queries, stats, feedback=False)
        frozen_seconds = time.perf_counter() - start

    stats = table_stats(_skewed_table(n))
    # Untimed warm-up: the corrector needs ``min_observations`` sightings of
    # the mis-estimated conjunct before corrections apply (the engine gets
    # the same head start from its telemetry warm start on reopen).
    _run_workload(table, queries[:3], stats, feedback=True)
    start = time.perf_counter()
    corrected = _run_workload(table, queries, stats, feedback=True)
    corrected_seconds = time.perf_counter() - start
    snapshot = GLOBAL_CORRECTOR.snapshot()
    GLOBAL_CORRECTOR.reset()

    return {
        "gate": "replan",
        "rows": n,
        "queries": n_queries,
        "frozen_seconds": round(frozen_seconds, 4),
        "corrected_seconds": round(corrected_seconds, 4),
        "speedup": round(frozen_seconds / max(corrected_seconds, 1e-9), 2),
        "results_equal": (all(a == b for a, b in zip(frozen, oracle))
                          and all(a == b for a, b in zip(corrected, oracle))),
        "corrections_served": snapshot["corrections_served"],
        "observations": snapshot["observations"],
    }


# ---------------------------------------------------------------------- gate (b)


def _wide_vocab_table(n: int) -> Table:
    """Two ~1600-value ordered-categorical columns plus a measure.

    Ordered comparisons over a vocabulary this wide decide membership per
    vocab entry in Python — the expensive kernel the committed bitmaps
    replace.  Values are spread uniformly so the hot predicates match in
    every shard (zone maps never skip; the bitmap does the work).
    """
    rng = np.random.default_rng(1)
    vocab = [f"v{i:04d}" for i in range(1600)]
    return Table.from_columns({
        "cat_a": [vocab[i] for i in rng.integers(0, len(vocab), n)],
        "cat_b": [vocab[i] for i in rng.integers(0, len(vocab), n)],
        "value": rng.normal(0.0, 10.0, n),
    }, name="hotwhere")


HOT_PREDICATES = (Predicate("cat_a", Op.LE, "v0399"),   # ~0.25
                  Predicate("cat_b", Op.GE, "v1200"))   # ~0.25


def _time_selects(loaded, pattern, n_queries: int) -> tuple[float, list]:
    start = time.perf_counter()
    results = [loaded.plan_shard_select(pattern)[0] for _ in range(n_queries)]
    return time.perf_counter() - start, results


def run_bitmap_comparison(n: int = 200_000, n_queries: int = 30,
                          shard_rows: int = 25_000) -> dict:
    pattern = Pattern(list(HOT_PREDICATES))
    with tempfile.TemporaryDirectory() as tmp:
        store = DatasetStore.init(Path(tmp) / "store")
        table = _wide_vocab_table(n)
        dataset = store.import_table("hotwhere", table,
                                     shard_rows=shard_rows)
        with oracle_mode():
            oracle = table.select(pattern)

        loaded = dataset.load_table()
        kernel_seconds, kernel_results = _time_selects(loaded, pattern,
                                                       n_queries)

        promoted_bytes = 0
        for predicate in HOT_PREDICATES:
            result = dataset.promote_index(predicate)
            loaded.install_predicate_index(result["key"], result["masks"])
            promoted_bytes += result["nbytes"]
        live_seconds, live_results = _time_selects(loaded, pattern, n_queries)

        # cold restart: a fresh process would reopen the store and serve
        # from the manifest's committed bitmaps alone
        reopened = DatasetStore(store.root).dataset("hotwhere")
        cold_table = reopened.load_table()
        cold_seconds, cold_results = _time_selects(cold_table, pattern,
                                                   n_queries)
        bitmap_served = (loaded.scan_stats()["bitmap_conjuncts_served"]
                         + cold_table.scan_stats()["bitmap_conjuncts_served"])

    equal = all(selected == oracle
                for leg in (kernel_results, live_results, cold_results)
                for selected in leg)
    return {
        "gate": "bitmap",
        "rows": n,
        "queries": n_queries,
        "shards": max(1, n // shard_rows),
        "kernel_seconds": round(kernel_seconds, 4),
        "live_bitmap_seconds": round(live_seconds, 4),
        "cold_bitmap_seconds": round(cold_seconds, 4),
        "speedup_live": round(kernel_seconds / max(live_seconds, 1e-9), 2),
        "speedup_cold": round(kernel_seconds / max(cold_seconds, 1e-9), 2),
        "index_bytes": promoted_bytes,
        "bitmap_conjuncts_served": bitmap_served,
        "results_equal": equal,
    }


# ---------------------------------------------------------------------- harness


def _check(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        if not row["results_equal"]:
            failures.append(f"{row['gate']}: results differ from the oracle")
    replan = next(r for r in rows if r["gate"] == "replan")
    if replan["speedup"] < MIN_REPLAN_SPEEDUP:
        failures.append(
            f"replan: corrected speedup {replan['speedup']:.2f}x below the "
            f"{MIN_REPLAN_SPEEDUP}x floor")
    if replan["corrections_served"] == 0:
        failures.append("replan: no corrections were ever served")
    bitmap = next(r for r in rows if r["gate"] == "bitmap")
    for leg in ("speedup_live", "speedup_cold"):
        if bitmap[leg] < MIN_BITMAP_SPEEDUP:
            failures.append(
                f"bitmap: {leg} {bitmap[leg]:.2f}x below the "
                f"{MIN_BITMAP_SPEEDUP}x floor")
    if bitmap["bitmap_conjuncts_served"] == 0:
        failures.append("bitmap: no conjunct was ever bitmap-served")
    return failures


def run_all(n_replan: int, n_bitmap: int) -> list[dict]:
    GLOBAL_HEAT.reset()
    return [run_replan_comparison(n=n_replan),
            run_bitmap_comparison(n=n_bitmap)]


def test_adaptive_speedups(benchmark):
    """≥1.5× corrected re-planning, ≥3× bitmap-served hot WHERE (cold too)."""
    from conftest import record_rows

    rows = benchmark.pedantic(run_all,
                              kwargs={"n_replan": 120_000,
                                      "n_bitmap": 120_000},
                              rounds=1, iterations=1)
    record_rows(benchmark, rows,
                paper_reference="ISSUE 10 / ROADMAP (iii) adaptive "
                                "re-planning from telemetry feedback",
                expected_shape=f"replan >= {MIN_REPLAN_SPEEDUP}x, bitmap "
                               f">= {MIN_BITMAP_SPEEDUP}x live and cold, "
                               "equal results")
    assert not _check(rows), (rows, _check(rows))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small instance for CI (120k rows)")
    parser.add_argument("--rows", type=int, default=None,
                        help="dataset size (default: 200000, smoke: 120000)")
    args = parser.parse_args(argv)
    n = args.rows if args.rows is not None else (120_000 if args.smoke
                                                 else 200_000)

    rows = run_all(n_replan=n, n_bitmap=n)
    replan, bitmap = rows
    print(f"feedback re-planning n={replan['rows']} "
          f"{replan['queries']} queries (heavy-hitter equality mis-estimated)")
    print(f"  frozen estimates: {replan['frozen_seconds']:.3f}s")
    print(f"  corrected estimates: {replan['corrected_seconds']:.3f}s "
          f"({replan['corrections_served']} corrections served)")
    print(f"  speedup {replan['speedup']:.1f}x")
    print(f"bitmap cracking n={bitmap['rows']} rows / {bitmap['shards']} "
          f"shards, {bitmap['queries']} hot conjunctive queries")
    print(f"  predicate kernels: {bitmap['kernel_seconds']:.3f}s")
    print(f"  committed bitmaps (live): {bitmap['live_bitmap_seconds']:.3f}s "
          f"({bitmap['speedup_live']:.1f}x)")
    print(f"  committed bitmaps (cold restart): "
          f"{bitmap['cold_bitmap_seconds']:.3f}s "
          f"({bitmap['speedup_cold']:.1f}x, {bitmap['index_bytes']} "
          f"index bytes)")

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {"benchmark": "bench_adaptive", "rows": rows,
               "expected_shape": f"replan >= {MIN_REPLAN_SPEEDUP}x, bitmap "
                                 f">= {MIN_BITMAP_SPEEDUP}x live and cold, "
                                 "equal results"}
    with (results_dir / "bench_adaptive.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)

    failures = _check(rows)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: corrected re-planning {replan['speedup']:.1f}x >= "
              f"{MIN_REPLAN_SPEEDUP}x, bitmap-served hot WHERE "
              f"{bitmap['speedup_live']:.1f}x live / "
              f"{bitmap['speedup_cold']:.1f}x cold >= {MIN_BITMAP_SPEEDUP}x, "
              "identical results")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
