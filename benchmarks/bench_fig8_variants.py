"""Figure 8(a-c) — runtime, overall explainability, and coverage of CauSumX,
Greedy-Last-Step, and the Brute-Force variants.

As in the paper, the Brute-Force variants are run only on the small German
dataset (everywhere else they exceed the time cutoff); CauSumX and
Greedy-Last-Step run on every dataset.
"""

from conftest import bench_config, record_rows

from repro.experiments import run_variants_comparison


def test_fig8_german_all_variants(benchmark, german_bundle):
    config = bench_config(k=5, theta=0.5, include_singleton_groups=True)

    def run():
        return run_variants_comparison(
            german_bundle,
            variants=("CauSumX", "Greedy-Last-Step", "Brute-Force", "Brute-Force-LP"),
            config=config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 8 (German)")


def test_fig8_stackoverflow_fast_variants(benchmark, so_bundle):
    def run():
        return run_variants_comparison(
            so_bundle, variants=("CauSumX", "Greedy-Last-Step"), config=bench_config())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 8 (SO)")


def test_fig8_accidents_fast_variants(benchmark, accidents_bundle):
    def run():
        return run_variants_comparison(
            accidents_bundle, variants=("CauSumX", "Greedy-Last-Step"),
            config=bench_config(theta=1.0))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 8 (Accidents)")


def test_fig8_adult_fast_variants(benchmark, adult_bundle):
    def run():
        return run_variants_comparison(
            adult_bundle, variants=("CauSumX", "Greedy-Last-Step"),
            config=bench_config(theta=0.75))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 8 (Adult)")
