"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6).  Dataset sizes are scaled down from the paper's (laptop-scale CI
budget) but the code paths and the qualitative shapes are the same; the exact
sizes used are recorded in each benchmark's ``extra_info``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import CauSumXConfig  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.mining.treatments import TreatmentMinerConfig  # noqa: E402

# Benchmark-scale dataset sizes (paper sizes in Table 3 are 1k-2.8M).
BENCH_SIZES = {
    "german": 1000,
    "adult": 2000,
    "stackoverflow": 2000,
    "cps": 4000,
    "accidents": 3000,
    "synthetic": 1000,
}


def bench_config(**overrides) -> CauSumXConfig:
    """The default benchmark configuration (paper defaults, shallower lattice)."""
    config = CauSumXConfig(
        k=5, theta=0.75, apriori_threshold=0.1, sample_size=None,
        min_group_size=10,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=10,
                                       significance_level=0.05,
                                       max_values_per_attribute=10),
    )
    return config.with_overrides(**overrides) if overrides else config


@pytest.fixture(scope="session")
def bundles():
    """All benchmark datasets, generated once per session."""
    return {name: load_dataset(name, n=size, seed=0)
            for name, size in BENCH_SIZES.items()}


@pytest.fixture(scope="session")
def so_bundle(bundles):
    return bundles["stackoverflow"]


@pytest.fixture(scope="session")
def german_bundle(bundles):
    return bundles["german"]


@pytest.fixture(scope="session")
def adult_bundle(bundles):
    return bundles["adult"]


@pytest.fixture(scope="session")
def accidents_bundle(bundles):
    return bundles["accidents"]


@pytest.fixture(scope="session")
def cps_bundle(bundles):
    return bundles["cps"]


RESULTS_DIR = Path(__file__).resolve().parent / "results"


def record_rows(benchmark, rows, **extra) -> None:
    """Attach experiment result rows to the benchmark record, echo them, and
    persist them as JSON under ``benchmarks/results/`` so EXPERIMENTS.md can be
    regenerated from the latest run."""
    import json

    benchmark.extra_info["rows"] = rows
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    print()
    for row in rows:
        print("   ", row)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = benchmark.name.replace("/", "_")
    payload = {"benchmark": benchmark.name, "rows": rows, **extra}
    with (RESULTS_DIR / f"{name}.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)
