"""Observability overhead benchmark — tracing off must cost nothing.

Serves the repetitive explain workload from ``bench_http_load`` against a
*store-backed* registry (so query telemetry actually persists) three times
over one live server: twice with tracing disabled (the second run bounds
run-to-run noise) and once with the full observability stack enabled
(``REPRO_TRACE=1`` semantics: spans, trace-id envelope/header fields, and
one telemetry record per explain).  Gates:

* **Disabled == free**: the enabled run's p99 client latency must stay
  within ``max(p99_off * 1.10, p99_off + ABS_SLACK_SECONDS)`` of the
  slower disabled run — the 10% ceiling from the issue, with an absolute
  slack floor because cache-served requests finish in single-digit
  milliseconds where 10% is below scheduler noise.

* **Same answers, plus a volatile tail**: every enabled-run response,
  after stripping the deterministic ``trace_id``/``duration_ms`` envelope
  tail (and the wall-clock serving fields), is byte-identical to the
  disabled run's response for the same request.

* **Telemetry completeness**: the enabled run leaves exactly one persisted
  record per explain request, the WHERE query's records carry per-conjunct
  estimated vs actual selectivities, and ``repro.obs.cli.aggregate`` rolls
  the log up without error.

Usable both as a pytest-benchmark test and as a standalone script for CI
smoke runs (writes ``benchmarks/results/bench_obs_overhead.json``)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import CauSumXConfig  # noqa: E402
from repro.datasets import make_stackoverflow  # noqa: E402
from repro.mining.treatments import TreatmentMinerConfig  # noqa: E402
from repro.net import TenantRegistry, create_server, serve_in_thread  # noqa: E402
from repro.obs import trace  # noqa: E402
from repro.obs.cli import aggregate  # noqa: E402
from repro.obs.telemetry import read_records  # noqa: E402
from repro.storage import DatasetStore  # noqa: E402

N_CLIENTS = 32
REQUESTS_PER_CLIENT = 8
SMOKE_CLIENTS = 8
SMOKE_REQUESTS = 6
MAX_INFLIGHT = 8
DATASET_ROWS = 400
P99_RATIO_CEILING = 1.10
ABS_SLACK_SECONDS = 0.05

QUERIES = (
    "SELECT Country, AVG(Salary) FROM SO GROUP BY Country",
    "SELECT Role, AVG(Salary) FROM SO GROUP BY Role",
    "SELECT Education, AVG(Salary) FROM SO GROUP BY Education",
    "SELECT Country, AVG(Salary) FROM SO WHERE Gender = 'Woman' "
    "GROUP BY Country",
)


def _config() -> CauSumXConfig:
    return CauSumXConfig(
        k=3, theta=0.5, apriori_threshold=0.1, sample_size=None,
        min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                       significance_level=0.05,
                                       max_values_per_attribute=8),
    )


def _normalize(raw: bytes) -> str:
    """Canonical response bytes: wall-clock and trace tail fields removed."""
    payload = json.loads(raw)
    payload.pop("cached", None)
    payload.pop("coalesced", None)
    payload.pop("trace_id", None)
    payload.pop("duration_ms", None)
    if isinstance(payload.get("result"), dict):
        payload["result"].pop("timings", None)
    return json.dumps(payload, sort_keys=True)


def _streams(n_clients: int, requests_per_client: int) -> list[list]:
    return [[QUERIES[(i + j) % len(QUERIES)]
             for j in range(requests_per_client)]
            for i in range(n_clients)]


def _run_storm(server, streams: list[list]):
    """Fire every client stream concurrently; latencies + normalized bodies."""
    host, port = server.server_address[:2]
    start = threading.Barrier(len(streams))
    latencies: list[float] = []
    responses: list[list] = [None] * len(streams)
    errors: list = []
    lock = threading.Lock()

    def client(index: int, stream: list):
        mine = []
        try:
            conn = http.client.HTTPConnection(host, port, timeout=120)
            start.wait(timeout=120)
            for position, query in enumerate(stream):
                request = {"op": "explain", "query": query,
                           "id": index * 1000 + position}
                begin = time.perf_counter()
                conn.request("POST", "/v1/explain", body=json.dumps(request),
                             headers={"X-Repro-Tenant": "default"})
                reply = conn.getresponse()
                raw = reply.read()
                elapsed = time.perf_counter() - begin
                mine.append((reply.status, _normalize(raw)))
                with lock:
                    latencies.append(elapsed)
            conn.close()
            responses[index] = mine
        except BaseException as exc:  # pragma: no cover - surfaced in gates
            with lock:
                errors.append(f"client {index}: {exc!r}")

    threads = [threading.Thread(target=client, args=(i, stream))
               for i, stream in enumerate(streams)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    return latencies, responses, errors


def _p(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q)) \
        if latencies else 0.0


def run_overhead(n_clients: int = N_CLIENTS,
                 requests_per_client: int = REQUESTS_PER_CLIENT) -> dict:
    bundle = make_stackoverflow(n=DATASET_ROWS, seed=7)
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        store = DatasetStore.init(Path(tmp) / "store")
        store.import_bundle(bundle, config=_config())
        registry = TenantRegistry.from_store(
            store, tenant_budget_bytes=32 << 20, max_tenants=16,
            max_workers=2, summary_cache_size=16)
        server = create_server(registry, "127.0.0.1", 0,
                               max_inflight=MAX_INFLIGHT,
                               max_queue=n_clients + 8)
        serve_in_thread(server)
        streams = _streams(n_clients, requests_per_client)
        trace.set_enabled(False)
        try:
            # Warm every distinct query (tracing off), so all three measured
            # passes serve from the summary cache and compare like for like.
            warm_engine = registry.engine_for("default")
            for query in QUERIES:
                warm_engine.explain(registry.default_dataset, query)

            lat_off_a, responses_off, errors = _run_storm(server, streams)
            lat_off_b, responses_off_b, errors_b = _run_storm(server, streams)
            trace.set_enabled(True)
            try:
                lat_on, responses_on, errors_on = _run_storm(server, streams)
            finally:
                trace.set_enabled(False)
            telemetry_dir = store.root / "telemetry"
            records, corrupt = read_records(telemetry_dir)
            summary = aggregate(records)
        finally:
            trace.set_enabled(None)
            server.graceful_shutdown(drain_timeout=60.0)

    def flat(responses):
        return [entry for mine in responses if mine for entry in mine]

    identical_off = flat(responses_off) == flat(responses_off_b)
    identical_on = flat(responses_off) == flat(responses_on)
    statuses = [s for s, _ in flat(responses_off) + flat(responses_off_b)
                + flat(responses_on)]
    requests_on = sum(len(s) for s in streams)

    p99_off = max(_p(lat_off_a, 99), _p(lat_off_b, 99))
    p99_on = _p(lat_on, 99)
    conjunct_records = sum(
        1 for record in records
        for conjunct in (record.get("plan") or {}).get("conjuncts") or []
        if conjunct.get("estimated_selectivity") is not None
        and conjunct.get("actual_selectivity") is not None)
    return {
        "clients": n_clients,
        "requests_per_client": requests_per_client,
        "errors": errors + errors_b + errors_on,
        "non_200": sum(1 for s in statuses if s != 200),
        "p50_off_seconds": round(max(_p(lat_off_a, 50), _p(lat_off_b, 50)), 4),
        "p99_off_seconds": round(p99_off, 4),
        "p50_on_seconds": round(_p(lat_on, 50), 4),
        "p99_on_seconds": round(p99_on, 4),
        "p99_ceiling_seconds": round(
            max(p99_off * P99_RATIO_CEILING, p99_off + ABS_SLACK_SECONDS), 4),
        "responses_identical_off": identical_off,
        "responses_identical_on_stripped": identical_on,
        "telemetry_records": len(records),
        "telemetry_corrupt": corrupt,
        "telemetry_expected": requests_on,
        "conjunct_est_actual_records": conjunct_records,
        "selectivity_abs_error_mean": summary["selectivity_abs_error_mean"],
        "summary_cache_hit_rate":
            summary["cache_hit_rates"].get("summary"),
    }


def _check(row: dict) -> list[str]:
    failures = []
    if row["errors"]:
        failures.append(f"client errors: {row['errors'][:3]}")
    if row["non_200"]:
        failures.append(f"{row['non_200']} non-200 response(s)")
    if not row["responses_identical_off"]:
        failures.append("disabled runs produced differing responses")
    if not row["responses_identical_on_stripped"]:
        failures.append("enabled run differs beyond the volatile "
                        "trace_id/duration_ms tail")
    if row["p99_on_seconds"] > row["p99_ceiling_seconds"]:
        failures.append(
            f"enabled p99 {row['p99_on_seconds']:.4f}s above the ceiling "
            f"{row['p99_ceiling_seconds']:.4f}s "
            f"(disabled p99 {row['p99_off_seconds']:.4f}s)")
    if row["telemetry_records"] != row["telemetry_expected"]:
        failures.append(
            f"{row['telemetry_records']} telemetry record(s) for "
            f"{row['telemetry_expected']} enabled explain request(s)")
    if row["telemetry_corrupt"]:
        failures.append(f"{row['telemetry_corrupt']} corrupt telemetry "
                        f"line(s)")
    if not row["conjunct_est_actual_records"]:
        failures.append("no per-conjunct estimated-vs-actual selectivity "
                        "pairs persisted (WHERE query records missing them)")
    return failures


EXPECTED_SHAPE = (f"enabled p99 <= max({P99_RATIO_CEILING}x disabled p99, "
                  f"disabled p99 + {ABS_SLACK_SECONDS}s); disabled responses "
                  f"byte-identical; one telemetry record per enabled explain "
                  f"with per-conjunct est/actual selectivities")


def test_obs_overhead(benchmark):
    """Tracing-off is free; tracing-on stays within the p99 ceiling."""
    from conftest import record_rows

    row = benchmark.pedantic(run_overhead,
                             kwargs={"n_clients": SMOKE_CLIENTS,
                                     "requests_per_client": SMOKE_REQUESTS},
                             rounds=1, iterations=1)
    record_rows(benchmark, [row],
                paper_reference="observability: tracing + telemetry overhead",
                expected_shape=EXPECTED_SHAPE)
    assert not _check(row), (row, _check(row))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced load for CI ({SMOKE_CLIENTS} clients)")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    args = parser.parse_args(argv)
    n_clients = args.clients if args.clients is not None else \
        (SMOKE_CLIENTS if args.smoke else N_CLIENTS)
    requests_per_client = args.requests if args.requests is not None else \
        (SMOKE_REQUESTS if args.smoke else REQUESTS_PER_CLIENT)

    row = run_overhead(n_clients=n_clients,
                       requests_per_client=requests_per_client)
    print(f"obs overhead: {row['clients']} clients x "
          f"{row['requests_per_client']} requests, three passes")
    print(f"  disabled: p50 {row['p50_off_seconds'] * 1000:.1f}ms  "
          f"p99 {row['p99_off_seconds'] * 1000:.1f}ms  "
          f"(runs identical: {row['responses_identical_off']})")
    print(f"  enabled:  p50 {row['p50_on_seconds'] * 1000:.1f}ms  "
          f"p99 {row['p99_on_seconds'] * 1000:.1f}ms  "
          f"(ceiling {row['p99_ceiling_seconds'] * 1000:.1f}ms)")
    print(f"  telemetry: {row['telemetry_records']} records for "
          f"{row['telemetry_expected']} explains, "
          f"{row['conjunct_est_actual_records']} with est/actual "
          f"selectivities, "
          f"|est-actual| mean {row['selectivity_abs_error_mean']}")

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {"benchmark": "bench_obs_overhead", "rows": [row],
               "expected_shape": EXPECTED_SHAPE}
    with (results_dir / "bench_obs_overhead.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)

    failures = _check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: tracing off is free (identical bytes), enabled p99 "
              f"{row['p99_on_seconds'] * 1000:.0f}ms within ceiling, "
              f"{row['telemetry_records']}/{row['telemetry_expected']} "
              f"telemetry records")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
