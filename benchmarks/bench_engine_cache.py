"""Explanation-engine benchmark — repeated-query serving vs. fresh per-call runs.

Simulates the interactive workload the serving layer exists for: a 20-query
stream over the stackoverflow bundle with 3 distinct queries (85% repeats,
well above the ≥50%-repeat workload the gate specifies) and compares

* the **baseline**: a fresh ``CauSumX(table, dag).explain(query)`` per call —
  what a stateless deployment would do — against
* the **engine**: one long-lived :class:`~repro.service.ExplanationEngine`
  with the dataset registered once, serving the same stream through its
  multi-level caches.

Gates:

* engine speedup ≥ ``MIN_SPEEDUP`` (5×) over the whole stream;
* every engine response is byte-identical (modulo wall-clock timings) to the
  fresh baseline for the same query;
* after an ``append_rows`` data-arrival cycle, the engine's summaries are
  again byte-identical to fresh runs over the concatenated table (the old
  cache entries must be invalidated, not served stale).

Usable both as a pytest-benchmark test and as a standalone script for CI
smoke runs (writes ``benchmarks/results/bench_engine_cache.json``)::

    PYTHONPATH=src python benchmarks/bench_engine_cache.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import CauSumX, CauSumXConfig, summary_to_dict  # noqa: E402
from repro.dataframe import Table  # noqa: E402
from repro.datasets import load_dataset, make_stackoverflow  # noqa: E402
from repro.mining.treatments import TreatmentMinerConfig  # noqa: E402
from repro.service import ExplanationEngine  # noqa: E402

MIN_SPEEDUP = 5.0

DISTINCT_QUERIES = [
    "SELECT Country, AVG(Salary) FROM SO GROUP BY Country",
    "SELECT Country, AVG(Salary) FROM SO WHERE Continent = 'Europe' GROUP BY Country",
    "SELECT Continent, AVG(Salary) FROM SO GROUP BY Continent",
]
# 20 requests, 3 distinct, 17 repeats (85% ≥ the 50%-repeat workload floor).
# Queries 0 and 2 share the empty-WHERE population, so the engine also reuses
# one mask/atom cache across *distinct* queries, not just repeated ones.
WORKLOAD = [DISTINCT_QUERIES[i] for i in
            (0, 1, 0, 2, 0, 1, 2, 0, 1, 0, 2, 0, 1, 2, 0, 1, 0, 2, 1, 0)]


def _config() -> CauSumXConfig:
    return CauSumXConfig(
        k=5, theta=0.75, apriori_threshold=0.1, sample_size=None,
        min_group_size=10,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=10,
                                       significance_level=0.05,
                                       max_values_per_attribute=10),
    )


def _payload(summary) -> str:
    """Canonical bytes of a summary, excluding wall-clock timings."""
    as_dict = summary_to_dict(summary)
    as_dict.pop("timings", None)
    return json.dumps(as_dict, sort_keys=True, default=str)


def _baseline(bundle_like, queries) -> tuple[float, dict]:
    """Fresh CauSumX per call; returns (seconds, {query: payload})."""
    table, dag = bundle_like
    config = _config()
    payloads: dict[str, str] = {}
    start = time.perf_counter()
    for query in queries:
        summary = CauSumX(table, dag, config).explain(query)
        payloads.setdefault(query, _payload(summary))
    return time.perf_counter() - start, payloads


def run_comparison(n: int = 1000, append_n: int = 200) -> dict:
    bundle = load_dataset("stackoverflow", n=n, seed=0)
    table, dag = bundle.table, bundle.dag

    # --- baseline: one fresh run per request --------------------------------
    baseline_seconds, baseline_payloads = _baseline((table, dag), WORKLOAD)

    # --- engine: registered once, serves the same stream --------------------
    engine = ExplanationEngine(max_workers=1)
    engine.register_dataset("stackoverflow", table, dag=dag, config=_config())
    engine_payloads: list[tuple[str, str]] = []
    start = time.perf_counter()
    for query in WORKLOAD:
        summary = engine.explain("stackoverflow", query)
        engine_payloads.append((query, _payload(summary)))
    engine_seconds = time.perf_counter() - start

    identical = all(payload == baseline_payloads[query]
                    for query, payload in engine_payloads)
    stats = engine.stats()

    # --- incremental append cycle -------------------------------------------
    appended = make_stackoverflow(n=append_n, seed=1).table
    report = engine.append_rows("stackoverflow", appended)
    combined = table.concat(appended)
    post_queries = DISTINCT_QUERIES
    _, post_baseline = _baseline((combined, dag), post_queries)
    post_identical = all(
        _payload(engine.explain("stackoverflow", query)) == post_baseline[query]
        for query in post_queries)
    # Serve the stream once more post-append: repeats must hit the new cache.
    for query in WORKLOAD:
        engine.explain("stackoverflow", query)
    post_stats = engine.stats()

    return {
        "dataset": "stackoverflow",
        "rows": table.n_rows,
        "requests": len(WORKLOAD),
        "distinct": len(DISTINCT_QUERIES),
        "repeat_fraction": round(1 - len(DISTINCT_QUERIES) / len(WORKLOAD), 2),
        "baseline_seconds": round(baseline_seconds, 3),
        "engine_seconds": round(engine_seconds, 3),
        "speedup": round(baseline_seconds / max(engine_seconds, 1e-9), 2),
        "summaries_identical": identical,
        "summary_cache_hits": stats["summary_cache"]["hits"],
        "computations": stats["computations"],
        "append_rows": report["appended_rows"],
        "append_invalidated": report["invalidated"],
        "append_masks_carried": report["masks_carried"],
        "post_append_identical": post_identical,
        "post_append_computations": post_stats["computations"],
    }


def _check(row: dict) -> list[str]:
    failures = []
    if not row["summaries_identical"]:
        failures.append("engine summaries differ from fresh per-call runs")
    if not row["post_append_identical"]:
        failures.append("post-append summaries differ from fresh runs on the "
                        "concatenated table (stale cache?)")
    if row["append_invalidated"] <= 0:
        failures.append("append_rows invalidated no cache entries")
    if row["speedup"] < MIN_SPEEDUP:
        failures.append(f"speedup {row['speedup']:.2f}x below the "
                        f"{MIN_SPEEDUP}x floor")
    if row["computations"] != row["distinct"]:
        failures.append(f"expected {row['distinct']} computations pre-append, "
                        f"saw {row['computations']}")
    return failures


def test_engine_cache_speedup(benchmark):
    """≥5× serving speedup on a repeated workload, byte-identical summaries."""
    from conftest import record_rows

    row = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_rows(benchmark, [row],
                paper_reference="Section 7 / ROADMAP serving layer",
                expected_shape=f"speedup >= {MIN_SPEEDUP}x, identical summaries, "
                               "append invalidation cycle")
    assert not _check(row), (row, _check(row))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small instance for CI (500 rows)")
    parser.add_argument("--rows", type=int, default=None,
                        help="dataset size (default: 1000, smoke: 500)")
    args = parser.parse_args(argv)
    n = args.rows if args.rows is not None else (500 if args.smoke else 1000)

    row = run_comparison(n=n)
    print(f"stackoverflow n={row['rows']}  {row['requests']} requests "
          f"({row['distinct']} distinct, {row['repeat_fraction']:.0%} repeats)")
    print(f"  baseline {row['baseline_seconds']:.2f}s  "
          f"engine {row['engine_seconds']:.2f}s  speedup {row['speedup']:.2f}x")
    print(f"  identical={row['summaries_identical']}  "
          f"post-append identical={row['post_append_identical']}  "
          f"invalidated={row['append_invalidated']}  "
          f"masks carried={row['append_masks_carried']}")

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {"benchmark": "bench_engine_cache", "rows": [row],
               "expected_shape": f"speedup >= {MIN_SPEEDUP}x, identical "
                                 "summaries, append invalidation cycle"}
    with (results_dir / "bench_engine_cache.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)

    failures = _check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: speedup {row['speedup']:.2f}x >= {MIN_SPEEDUP}x, "
              "summaries identical, append cycle clean")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
