"""Parallel-execution benchmark — morsel-driven shard scans and partials.

Three gates for the ``repro.parallel`` subsystem:

* **Identical results at every width**: the planned multi-million-row WHERE
  scan returns the same rows — and records the same per-conjunct actuals in
  its :class:`~repro.plan.ScanPlan` — at 4 workers as at 1 (the serial
  code).  This is the invariant everything else leans on and it is checked
  unconditionally.

* **Scan scaling ≥ ``MIN_SCAN_SPEEDUP`` (2×) at 4 workers** — the per-shard
  predicate kernels run over memory-mapped arrays and release the GIL, so
  four workers should cut wall clock at least in half.  The floor is only
  enforced when the machine actually has ≥ 4 CPUs (CI runners do); on
  smaller hosts the gate degrades to a bounded-overhead check (parallel no
  worse than ``MAX_OVERHEAD`` × serial) since no thread pool can beat the
  clock on one core.

* **Partials ≥ ``MIN_PARTIALS_SPEEDUP`` (2×), zero rows touched** — after
  ``compact --cluster-by`` over a categorical key, a no-WHERE group-by
  answers from the committed manifest partials: the benchmark asserts the
  answer equals the full group scan's, that it is at least 2× faster, and
  that **no shard archive was opened** (``scan_stats()["shards_open"] ==
  0``).  This gate is hardware-independent.

Usable both as a pytest-benchmark test and as a standalone script for CI
smoke runs (writes ``benchmarks/results/bench_parallel_scan.json``)::

    PYTHONPATH=src python benchmarks/bench_parallel_scan.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.dataframe import Pattern, Table  # noqa: E402
from repro.parallel import workers  # noqa: E402
from repro.sql import AggregateView, parse_query  # noqa: E402
from repro.storage import DatasetStore  # noqa: E402

MIN_SCAN_SPEEDUP = 2.0       # enforced when the host has >= PARALLEL_WIDTH CPUs
MAX_OVERHEAD = 2.0           # 1-CPU hosts: parallel must stay within 2x serial
MIN_PARTIALS_SPEEDUP = 2.0   # hardware-independent
PARALLEL_WIDTH = 4
N_SHARDS = 16
SCAN_REPEATS = 3


def _dataset(n: int) -> Table:
    """A synthetic multi-million-row event log (mostly numeric kernels)."""
    rng = np.random.default_rng(0)
    regions = np.array(["us-east", "us-west", "eu-1", "eu-2", "ap-1", "ap-2"])
    return Table.from_columns({
        "region": regions[rng.integers(0, len(regions), n)].tolist(),
        "latency": rng.gamma(2.0, 30.0, n),
        "payload": rng.integers(0, 1 << 20, n).astype(float),
        "errors": rng.poisson(0.2, n).astype(float),
    }, name="events")


def _best_of(fn, repeats: int = SCAN_REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_comparison(n: int = 4_000_000) -> dict:
    table = _dataset(n)
    pattern = Pattern.of(("latency", ">", 60.0), ("payload", ">", 500_000.0),
                         ("errors", ">", 0.0))
    # Integer-valued outcome: group sums are exact in float64 under any
    # summation order, so the partials answer can be compared with == even
    # across the row reordering a clustered compaction performs.
    query = parse_query(
        "SELECT region, AVG(payload) FROM events GROUP BY region")

    with tempfile.TemporaryDirectory() as tmp:
        store = DatasetStore.init(Path(tmp) / "store")
        dataset = store.import_table("events", table,
                                     shard_rows=max(1, n // N_SHARDS))

        # --- planned scan: serial vs 4 workers, cold table each time --------
        def scan(width: int):
            with workers(width):
                loaded = dataset.load_table()
                return loaded.plan_shard_select(pattern)

        serial_seconds, (serial_rows, serial_plan) = _best_of(
            lambda: scan(1))
        parallel_seconds, (parallel_rows, parallel_plan) = _best_of(
            lambda: scan(PARALLEL_WIDTH))
        scans_equal = parallel_rows == serial_rows and \
            parallel_plan.to_dict() == serial_plan.to_dict()

        # --- group-by: full scan vs committed manifest partials -------------
        with workers(1):
            scan_seconds, scan_view = _best_of(
                lambda: AggregateView(dataset.load_table(), query), repeats=1)
        store.compact("events", cluster_by="region")
        partial_seconds, partial_view = _best_of(
            lambda: AggregateView(dataset.load_table(), query))
        # Shards-opened accounting against a table that served the answer.
        probe = dataset.load_table()
        AggregateView(probe, query)
        partial_stats = probe.scan_stats()

    return {
        "rows": table.n_rows,
        "shards": N_SHARDS,
        "cpus": os.cpu_count() or 1,
        "parallel_width": PARALLEL_WIDTH,
        "selectivity": round(serial_rows.n_rows / table.n_rows, 4),
        "serial_scan_seconds": round(serial_seconds, 4),
        "parallel_scan_seconds": round(parallel_seconds, 4),
        "scan_speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "scans_equal": scans_equal,
        "groupby_scan_seconds": round(scan_seconds, 4),
        "groupby_partials_seconds": round(partial_seconds, 4),
        "partials_speedup": round(scan_seconds / max(partial_seconds, 1e-9),
                                  2),
        "groups_equal": partial_view.groups == scan_view.groups,
        "partials_served": partial_view.served_from_partials,
        "shards_open_after_partials": partial_stats["shards_open"],
    }


def _check(row: dict) -> list[str]:
    failures = []
    if not row["scans_equal"]:
        failures.append("parallel scan differs from serial (rows or plan)")
    if not row["groups_equal"]:
        failures.append("partials-served group-by differs from full scan")
    if not row["partials_served"]:
        failures.append("clustered group-by was not served from partials")
    if row["shards_open_after_partials"] != 0:
        failures.append(
            f"partials-served group-by opened "
            f"{row['shards_open_after_partials']} shard archive(s)")
    if row["partials_speedup"] < MIN_PARTIALS_SPEEDUP:
        failures.append(f"partials speedup {row['partials_speedup']:.2f}x "
                        f"below the {MIN_PARTIALS_SPEEDUP}x floor")
    if row["cpus"] >= PARALLEL_WIDTH:
        if row["scan_speedup"] < MIN_SCAN_SPEEDUP:
            failures.append(
                f"scan speedup {row['scan_speedup']:.2f}x at "
                f"{PARALLEL_WIDTH} workers below the {MIN_SCAN_SPEEDUP}x "
                f"floor ({row['cpus']} CPUs)")
    elif row["parallel_scan_seconds"] > \
            MAX_OVERHEAD * row["serial_scan_seconds"]:
        failures.append(
            f"parallel scan {row['parallel_scan_seconds']:.4f}s exceeds "
            f"{MAX_OVERHEAD}x serial {row['serial_scan_seconds']:.4f}s on a "
            f"{row['cpus']}-CPU host")
    return failures


def test_parallel_scan_speedups(benchmark):
    """Identical results at every width; >=2x scan (4 CPUs) and partials."""
    from conftest import record_rows

    row = benchmark.pedantic(run_comparison, kwargs={"n": 1_000_000},
                             rounds=1, iterations=1)
    record_rows(benchmark, [row],
                paper_reference="ROADMAP parallel execution",
                expected_shape=f"scan >= {MIN_SCAN_SPEEDUP}x at "
                               f"{PARALLEL_WIDTH} workers (>= 4 CPUs), "
                               f"partials >= {MIN_PARTIALS_SPEEDUP}x, "
                               f"identical results")
    assert not _check(row), (row, _check(row))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller instance for CI (1.5M rows)")
    parser.add_argument("--rows", type=int, default=None,
                        help="dataset size (default: 4000000, smoke: 1500000)")
    args = parser.parse_args(argv)
    n = args.rows if args.rows is not None else (1_500_000 if args.smoke
                                                 else 4_000_000)

    row = run_comparison(n=n)
    print(f"events n={row['rows']}  {row['shards']} shards  "
          f"{row['cpus']} CPUs  selectivity {row['selectivity']:.1%}")
    print(f"  planned scan: serial {row['serial_scan_seconds']:.4f}s  "
          f"{row['parallel_width']} workers "
          f"{row['parallel_scan_seconds']:.4f}s  "
          f"speedup {row['scan_speedup']:.2f}x")
    print(f"  group-by: full scan {row['groupby_scan_seconds']:.4f}s  "
          f"manifest partials {row['groupby_partials_seconds']:.4f}s  "
          f"speedup {row['partials_speedup']:.1f}x  "
          f"(shards opened: {row['shards_open_after_partials']})")

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {"benchmark": "bench_parallel_scan", "rows": [row],
               "expected_shape": f"scan >= {MIN_SCAN_SPEEDUP}x at "
                                 f"{PARALLEL_WIDTH} workers (>= 4 CPUs), "
                                 f"partials >= {MIN_PARTIALS_SPEEDUP}x, "
                                 f"identical results"}
    with (results_dir / "bench_parallel_scan.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)

    failures = _check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        floor = (f"scan {row['scan_speedup']:.2f}x"
                 if row["cpus"] >= PARALLEL_WIDTH
                 else f"scan floor skipped ({row['cpus']} CPU(s))")
        print(f"\nOK: {floor}, partials {row['partials_speedup']:.1f}x >= "
              f"{MIN_PARTIALS_SPEEDUP}x, results identical, "
              f"0 shards opened")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
