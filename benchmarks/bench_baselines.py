"""Section 6.2 baseline comparison — Explanation-Table, IDS, FRL, and
XInsight-style pairwise explanations on the Stack-Overflow-like dataset.

The paper's headline qualitative claims reproduced here:
* XInsight produces O(m^2) pairwise explanations whereas CauSumX needs k;
* the rule-based baselines (ET/IDS/FRL) surface frequent or high-information
  patterns rather than high-causal-effect treatments.
"""

import time

from conftest import bench_config, record_rows

from repro.baselines import (
    ExplanationTable,
    FallingRuleList,
    InterpretableDecisionSets,
    XInsightPairwise,
)
from repro.core import CauSumX
from repro.sql import AggregateView

ATTRIBUTES = ["Role", "Education", "Student", "AgeBand", "Gender", "YearsCoding"]


def test_baseline_comparison_stackoverflow(benchmark, so_bundle):
    def run():
        rows = []
        view = AggregateView(so_bundle.table, so_bundle.query)

        start = time.perf_counter()
        summary = CauSumX(so_bundle.table, so_bundle.dag,
                          bench_config(k=3, theta=1.0)).explain(
            so_bundle.query,
            grouping_attributes=so_bundle.grouping_attributes,
            treatment_attributes=so_bundle.treatment_attributes)
        rows.append({"method": "CauSumX", "runtime": time.perf_counter() - start,
                     "explanation_size": len(summary),
                     "covers_entire_view": summary.coverage == 1.0,
                     "causal": True, "supports_groups": True})

        start = time.perf_counter()
        et = ExplanationTable(n_patterns=5, max_length=2).fit(
            so_bundle.table, "Salary", attributes=ATTRIBUTES)
        rows.append({"method": "Explanation-Table", "runtime": time.perf_counter() - start,
                     "explanation_size": len(et.rules),
                     "covers_entire_view": True, "causal": False,
                     "supports_groups": False})

        start = time.perf_counter()
        ids = InterpretableDecisionSets(max_rules=5, max_length=2).fit(
            so_bundle.table, "Salary", attributes=ATTRIBUTES)
        rows.append({"method": "IDS", "runtime": time.perf_counter() - start,
                     "explanation_size": len(ids.rules),
                     "accuracy": round(ids.accuracy(so_bundle.table, "Salary"), 3),
                     "covers_entire_view": True, "causal": False,
                     "supports_groups": False})

        start = time.perf_counter()
        frl = FallingRuleList(max_rules=5, max_length=2).fit(
            so_bundle.table, "Salary", attributes=ATTRIBUTES)
        rows.append({"method": "FRL", "runtime": time.perf_counter() - start,
                     "explanation_size": len(frl.rules),
                     "is_falling": frl.is_falling(),
                     "covers_entire_view": True, "causal": False,
                     "supports_groups": False})

        start = time.perf_counter()
        xinsight = XInsightPairwise(dag=so_bundle.dag).fit(
            view, ["Role", "Education", "Student"], max_pairs=30)
        rows.append({"method": "XInsight (pairwise)",
                     "runtime": time.perf_counter() - start,
                     "explanation_size": xinsight.explanation_size(),
                     "pairs_needed_for_full_view": view.m * (view.m - 1) // 2,
                     "covers_entire_view": False, "causal": True,
                     "supports_groups": True})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Section 6.2 / Table 2",
                expected_shape="CauSumX: small summary, causal, covers entire view; "
                               "XInsight explanation size grows quadratically in m")
