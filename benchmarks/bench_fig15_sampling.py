"""Figures 15/22 — CATE estimation error and Kendall's tau vs sample size
(Accidents-like dataset)."""

from conftest import record_rows

from repro.experiments import cate_vs_sample_size, kendall_vs_sample_size


def test_fig15a_cate_vs_sample_size(benchmark, accidents_bundle):
    def run():
        return cate_vs_sample_size(accidents_bundle,
                                   sample_sizes=[200, 500, 1000, 3000],
                                   n_treatments=5, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 15(a)/22(a)")


def test_fig15b_kendall_vs_sample_size(benchmark, accidents_bundle):
    def run():
        return kendall_vs_sample_size(accidents_bundle,
                                      sample_sizes=[200, 500, 1000, 3000],
                                      n_treatments=15, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 15(b)/22(b)",
                expected_shape="tau rises toward 1.0 as the sample size grows")
