"""Ablation — the Algorithm 2 optimisations of Section 5.2.

DESIGN.md calls out four optimisations (attribute pruning, treatment pruning to
the top 50%, CATE sampling, and the LP last step vs greedy).  Each ablation
disables one of them and records the runtime / quality impact.
"""

import time
from dataclasses import replace

from conftest import bench_config, record_rows

from repro.core import CauSumX


def _run_with(bundle, config):
    start = time.perf_counter()
    summary = CauSumX(bundle.table, bundle.dag, config).explain(
        bundle.query,
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=bundle.treatment_attributes)
    return {
        "runtime": round(time.perf_counter() - start, 3),
        "total_explainability": round(summary.total_explainability, 2),
        "coverage": round(summary.coverage, 3),
        "n_candidates": summary.n_candidates,
    }


def test_ablation_algorithm2_optimizations(benchmark, so_bundle):
    base = bench_config(k=3, theta=1.0)

    def run():
        rows = []
        rows.append({"setting": "full CauSumX", **_run_with(so_bundle, base)})
        rows.append({"setting": "no attribute pruning (opt a off)",
                     **_run_with(so_bundle, base.with_overrides(
                         treatment=replace(base.treatment, prune_attributes=False)))})
        rows.append({"setting": "no treatment pruning (opt b off, keep 100%)",
                     **_run_with(so_bundle, base.with_overrides(
                         treatment=replace(base.treatment, keep_fraction=1.0)))})
        rows.append({"setting": "CATE sampling 500 tuples (opt d)",
                     **_run_with(so_bundle, base.with_overrides(sample_size=500))})
        rows.append({"setting": "greedy last step instead of LP",
                     **_run_with(so_bundle, base.with_overrides(solver="greedy"))})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Section 5.2 optimisations (ablation)",
                expected_shape="disabling pruning raises runtime at similar quality; "
                               "sampling lowers runtime with small quality loss")
