"""Figure 21 — explainability and coverage vs the Apriori threshold tau."""

from conftest import bench_config, record_rows

from repro.experiments import sweep_apriori_threshold


def test_fig21_adult_apriori_threshold(benchmark, adult_bundle):
    def run():
        return sweep_apriori_threshold(adult_bundle,
                                       thresholds=[0.0, 0.1, 0.25, 0.5],
                                       config=bench_config())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 21 (Adult)")


def test_fig21_accidents_apriori_threshold(benchmark, accidents_bundle):
    def run():
        return sweep_apriori_threshold(accidents_bundle,
                                       thresholds=[0.0, 0.1, 0.25, 0.5],
                                       config=bench_config(theta=1.0))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 21 (Accidents)",
                expected_shape="higher tau never increases explainability or coverage")
