"""Figure 9 — explainability and coverage of CauSumX vs Greedy-Last-Step while
varying the solution size k (SO dataset)."""

from conftest import bench_config, record_rows

from repro.experiments import sweep_k


def test_fig9_vary_k_stackoverflow(benchmark, so_bundle):
    def run():
        return sweep_k(so_bundle, k_values=[1, 2, 3, 4, 6],
                       config=bench_config(theta=0.75))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 9")
