"""Storage benchmark — mmap cold loads and zone-map shard pruning.

Two gates for the ``repro.storage`` subsystem (ISSUE 4):

* **Cold load ≥ ``MIN_LOAD_SPEEDUP`` (5×)**: opening a stored dataset as a
  memory-mapped :class:`~repro.storage.ShardedTable` and running one
  aggregate over a numeric column must beat parsing the equivalent CSV with
  ``read_csv`` by 5× — the restart-cost argument for the store.  (The mmap
  path decodes only the column it touches; the CSV parse must read every
  byte of the file.)

* **Pruned scan ≥ ``MIN_SCAN_SPEEDUP`` (2×)**: a selective WHERE scan over a
  sharded dataset whose zone maps exclude most shards must beat the same
  scan with pruning disabled by 2×, on equally cold tables (fresh load per
  measurement, so shard decoding — the real cost — is inside the timing).

Both paths also assert exact result equality (same rows, same aggregates),
so the speedups can never come from answering a different question.

Usable both as a pytest-benchmark test and as a standalone script for CI
smoke runs (writes ``benchmarks/results/bench_storage.json``)::

    PYTHONPATH=src python benchmarks/bench_storage.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.dataframe import Pattern, Table, read_csv, write_csv  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.storage import DatasetStore  # noqa: E402

MIN_LOAD_SPEEDUP = 5.0
MIN_SCAN_SPEEDUP = 2.0
N_SHARDS = 8
SCAN_REPEATS = 3


def _dataset(n: int) -> Table:
    """The stackoverflow table, clustered by Country so shards are prunable.

    Sorting by the dictionary codes groups each country's rows into a few
    shards, so the categorical zone maps (per-shard vocab bitsets) can prove
    most shards irrelevant to a ``Country = …`` filter — the natural layout
    of any log-structured ingest partitioned by tenant/region.
    """
    table = load_dataset("stackoverflow", n=n, seed=0).table
    order = np.argsort(table.column("Country").codes, kind="stable")
    return table.take(order)


def _time(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_comparison(n: int = 50_000) -> dict:
    table = _dataset(n)
    country = table.column("Country").vocab[0]
    pattern = Pattern.of(("Country", "==", country))

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        csv_path = tmp / "data.csv"
        write_csv(table, csv_path)
        store = DatasetStore.init(tmp / "store")
        shard_rows = max(1, (table.n_rows + N_SHARDS - 1) // N_SHARDS)
        dataset = store.import_table("so", table, shard_rows=shard_rows)

        # --- cold load: CSV parse vs mmap open + one aggregate --------------
        def load_csv():
            loaded = read_csv(csv_path)
            return loaded.avg("Salary")

        def load_store():
            loaded = dataset.load_table()
            return loaded.avg("Salary")

        csv_seconds, csv_avg = _time(load_csv)
        store_seconds, store_avg = _time(load_store)
        loads_equal = csv_avg == store_avg

        # --- selective scan: pruned vs unpruned, cold table each time --------
        reference = table.select(pattern)
        pruned_seconds = unpruned_seconds = 0.0
        scans_equal = True
        stats = {}
        for _ in range(SCAN_REPEATS):
            pruned_table = dataset.load_table(prune=True)
            seconds, pruned_result = _time(lambda: pruned_table.select(pattern))
            pruned_seconds += seconds
            stats = pruned_table.scan_stats()
            unpruned_table = dataset.load_table(prune=False)
            seconds, unpruned_result = _time(
                lambda: unpruned_table.select(pattern))
            unpruned_seconds += seconds
            scans_equal = scans_equal and pruned_result == reference \
                and unpruned_result == reference

    return {
        "rows": table.n_rows,
        "shards": len(dataset.manifest.shards),
        "csv_load_seconds": round(csv_seconds, 4),
        "store_load_seconds": round(store_seconds, 4),
        "load_speedup": round(csv_seconds / max(store_seconds, 1e-9), 2),
        "loads_equal": loads_equal,
        "selectivity": round(reference.n_rows / table.n_rows, 4),
        "unpruned_scan_seconds": round(unpruned_seconds / SCAN_REPEATS, 4),
        "pruned_scan_seconds": round(pruned_seconds / SCAN_REPEATS, 4),
        "scan_speedup": round(unpruned_seconds / max(pruned_seconds, 1e-9), 2),
        "shards_skipped_per_scan": stats["shards_skipped"] // max(
            stats["scans"], 1),
        "scans_equal": scans_equal,
    }


def _check(row: dict) -> list[str]:
    failures = []
    if not row["loads_equal"]:
        failures.append("store-loaded aggregate differs from CSV-loaded one")
    if not row["scans_equal"]:
        failures.append("pruned scan returned different rows than unpruned")
    if row["shards_skipped_per_scan"] < 1:
        failures.append("zone maps skipped no shards on a selective scan")
    if row["load_speedup"] < MIN_LOAD_SPEEDUP:
        failures.append(f"cold-load speedup {row['load_speedup']:.2f}x below "
                        f"the {MIN_LOAD_SPEEDUP}x floor")
    if row["scan_speedup"] < MIN_SCAN_SPEEDUP:
        failures.append(f"pruned-scan speedup {row['scan_speedup']:.2f}x "
                        f"below the {MIN_SCAN_SPEEDUP}x floor")
    return failures


def test_storage_speedups(benchmark):
    """≥5× mmap cold load vs CSV parse; ≥2× zone-map-pruned selective scan."""
    from conftest import record_rows

    row = benchmark.pedantic(run_comparison, kwargs={"n": 20_000},
                             rounds=1, iterations=1)
    record_rows(benchmark, [row],
                paper_reference="ISSUE 4 / ROADMAP storage subsystem",
                expected_shape=f"load >= {MIN_LOAD_SPEEDUP}x, "
                               f"scan >= {MIN_SCAN_SPEEDUP}x, equal results")
    assert not _check(row), (row, _check(row))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small instance for CI (20k rows)")
    parser.add_argument("--rows", type=int, default=None,
                        help="dataset size (default: 50000, smoke: 20000)")
    args = parser.parse_args(argv)
    n = args.rows if args.rows is not None else (20_000 if args.smoke
                                                 else 50_000)

    row = run_comparison(n=n)
    print(f"stackoverflow n={row['rows']}  {row['shards']} shards  "
          f"selectivity {row['selectivity']:.1%}")
    print(f"  cold load: csv {row['csv_load_seconds']:.3f}s  "
          f"store {row['store_load_seconds']:.3f}s  "
          f"speedup {row['load_speedup']:.1f}x")
    print(f"  selective scan: unpruned {row['unpruned_scan_seconds']:.4f}s  "
          f"pruned {row['pruned_scan_seconds']:.4f}s  "
          f"speedup {row['scan_speedup']:.1f}x  "
          f"({row['shards_skipped_per_scan']}/{row['shards']} shards skipped)")

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {"benchmark": "bench_storage", "rows": [row],
               "expected_shape": f"load >= {MIN_LOAD_SPEEDUP}x, "
                                 f"scan >= {MIN_SCAN_SPEEDUP}x, equal results"}
    with (results_dir / "bench_storage.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)

    failures = _check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: cold load {row['load_speedup']:.1f}x >= "
              f"{MIN_LOAD_SPEEDUP}x, pruned scan {row['scan_speedup']:.1f}x "
              f">= {MIN_SCAN_SPEEDUP}x, results identical")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
