"""Table 4 — causal DAG statistics (edges, density) per discovery algorithm."""

from conftest import record_rows

from repro.experiments import dag_statistics_table


def test_table4_dag_statistics(benchmark, german_bundle, adult_bundle, so_bundle):
    def build_table4():
        rows = []
        for bundle in (german_bundle, adult_bundle, so_bundle):
            rows.extend(dag_statistics_table(
                bundle, methods=("ground_truth", "PC", "FCI", "LiNGAM")))
        return rows

    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Table 4")
