"""Query-planner benchmark — selectivity-aware conjunct ordering (ISSUE 5).

One gate for the ``repro.plan`` subsystem:

* **Planned scan ≥ ``MIN_SPEEDUP`` (2×)** on a *skewed-selectivity*
  conjunctive workload: every query carries one highly selective cheap
  equality predicate that canonical (attribute-sorted) order places **last**,
  behind three broad predicates — the worst case for the oracle's
  left-to-right full-mask evaluation.  The planner must rank it first from
  column statistics alone and short-circuit the rest over the surviving
  candidates.  The planned timing includes the one-time statistics build
  (it amortises over the workload, exactly as it does in the engine).

Every query's planned result is asserted **equal row-for-row** to the
unplanned oracle result, so the speedup can never come from answering a
different question.

Usable both as a pytest-benchmark test and as a standalone script for CI
smoke runs (writes ``benchmarks/results/bench_planner.json``)::

    PYTHONPATH=src python benchmarks/bench_planner.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.dataframe import Pattern, Table  # noqa: E402
from repro.plan import oracle_mode, plan_scan, planned_select, table_stats  # noqa: E402

MIN_SPEEDUP = 2.0
N_QUERIES = 60
N_TENANTS = 500


def _dataset(n: int) -> Table:
    """Four columns whose predicates have very different selectivities.

    Attribute names are chosen so the canonical ``Pattern`` order (sorted by
    attribute) lists the broad predicates first and the selective tenant
    equality *last* — left-to-right evaluation pays full price for every
    conjunct before the selective one finally collapses the row set.
    """
    rng = np.random.default_rng(0)
    channels = ["web", "app", "api", "ads", "mail", "sms"]
    return Table.from_columns({
        "amount": rng.normal(0.0, 50.0, n),
        "channel": [channels[i] for i in rng.integers(0, len(channels), n)],
        "region": [f"r{i:02d}" for i in rng.integers(0, 40, n)],
        "ztenant": [f"tenant-{i:04d}" for i in rng.integers(0, N_TENANTS, n)],
    }, name="skewed")


def _workload(n_queries: int) -> list[Pattern]:
    """Conjunctions over one tenant each: ~1/500 selective, listed last."""
    return [
        Pattern.of(("amount", ">=", -20.0),          # ~0.95 selective, cheap
                   ("channel", "!=", "web"),         # ~0.83 selective, cheap
                   ("region", "<=", "r19"),          # ~0.50, vocab-loop cost
                   ("ztenant", "==", f"tenant-{t % N_TENANTS:04d}"))
        for t in range(n_queries)
    ]


def run_comparison(n: int = 150_000, n_queries: int = N_QUERIES) -> dict:
    table = _dataset(n)
    queries = _workload(n_queries)

    # --- unplanned oracle: canonical order, full mask per conjunct ----------
    start = time.perf_counter()
    with oracle_mode():
        oracle_results = [table.select(pattern) for pattern in queries]
    unplanned_seconds = time.perf_counter() - start

    # --- planned: stats build + reorder + short-circuit ---------------------
    fresh = _dataset(n)  # cold stats: their build cost belongs to the timing
    start = time.perf_counter()
    planned_results = [planned_select(fresh, pattern) for pattern in queries]
    planned_seconds = time.perf_counter() - start

    equal = all(planned == oracle
                for planned, oracle in zip(planned_results, oracle_results))
    plan = plan_scan(table, queries[0], stats=table_stats(table))
    first = plan.conjuncts[0].predicate
    return {
        "rows": table.n_rows,
        "queries": len(queries),
        "conjuncts_per_query": len(queries[0].predicates),
        "unplanned_seconds": round(unplanned_seconds, 4),
        "planned_seconds": round(planned_seconds, 4),
        "speedup": round(unplanned_seconds / max(planned_seconds, 1e-9), 2),
        "results_equal": equal,
        "reordered": plan.reordered,
        "first_conjunct": repr(first),
        "selective_first": first.attribute == "ztenant",
        "matched_rows": sum(r.n_rows for r in planned_results),
    }


def _check(row: dict) -> list[str]:
    failures = []
    if not row["results_equal"]:
        failures.append("planned scan returned different rows than the oracle")
    if not row["reordered"]:
        failures.append("planner did not reorder the skewed conjunction")
    if not row["selective_first"]:
        failures.append("planner failed to rank the selective equality first")
    if row["speedup"] < MIN_SPEEDUP:
        failures.append(f"planned speedup {row['speedup']:.2f}x below the "
                        f"{MIN_SPEEDUP}x floor")
    return failures


def test_planner_speedup(benchmark):
    """≥2× planned vs unplanned left-to-right on a skewed conjunctive workload."""
    from conftest import record_rows

    row = benchmark.pedantic(run_comparison, kwargs={"n": 60_000},
                             rounds=1, iterations=1)
    record_rows(benchmark, [row],
                paper_reference="ISSUE 5 / ROADMAP (i) selectivity-aware "
                                "scan planning",
                expected_shape=f"speedup >= {MIN_SPEEDUP}x, equal results, "
                               "selective conjunct ranked first")
    assert not _check(row), (row, _check(row))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small instance for CI (60k rows)")
    parser.add_argument("--rows", type=int, default=None,
                        help="dataset size (default: 150000, smoke: 60000)")
    args = parser.parse_args(argv)
    n = args.rows if args.rows is not None else (60_000 if args.smoke
                                                 else 150_000)

    row = run_comparison(n=n)
    print(f"skewed workload n={row['rows']}  {row['queries']} queries x "
          f"{row['conjuncts_per_query']} conjuncts  "
          f"(selective predicate canonical-last)")
    print(f"  unplanned left-to-right: {row['unplanned_seconds']:.3f}s")
    print(f"  planned (stats + reorder + short-circuit): "
          f"{row['planned_seconds']:.3f}s")
    print(f"  speedup {row['speedup']:.1f}x  first conjunct: "
          f"{row['first_conjunct']}")

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {"benchmark": "bench_planner", "rows": [row],
               "expected_shape": f"speedup >= {MIN_SPEEDUP}x, equal results, "
                                 "selective conjunct ranked first"}
    with (results_dir / "bench_planner.json").open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)

    failures = _check(row)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"\nOK: planned scan {row['speedup']:.1f}x >= {MIN_SPEEDUP}x "
              "vs unplanned left-to-right, identical results")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
