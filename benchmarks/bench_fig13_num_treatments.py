"""Figure 13 — runtime vs number of candidate treatment patterns
(Adult-like and CPS-like datasets, varying values/bins per attribute)."""

from conftest import bench_config, record_rows

from repro.experiments import runtime_vs_treatment_patterns


def test_fig13_adult_runtime_vs_treatments(benchmark, adult_bundle):
    def run():
        return runtime_vs_treatment_patterns(adult_bundle, bin_counts=[3, 6, 10],
                                             config=bench_config())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 13(a)")


def test_fig13_cps_runtime_vs_treatments(benchmark, cps_bundle):
    def run():
        return runtime_vs_treatment_patterns(cps_bundle, bin_counts=[3, 6, 10],
                                             config=bench_config(sample_size=2000))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 13(b)")
