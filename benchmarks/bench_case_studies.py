"""Case studies — Figures 2, 6, 7, 18, 19: the qualitative explanation summaries.

Each benchmark runs one case study end to end and records the rendered summary
plus structural checks of its shape (coverage, directions of the top drivers).
"""

from conftest import record_rows

from repro.core import CauSumXConfig
from repro.experiments import run_case_study
from repro.mining.treatments import TreatmentMinerConfig

CASE_SIZES = {
    "figure2_stackoverflow": 2000,
    "figure6_stackoverflow_sensitive": 2000,
    "figure7_accidents": 3000,
    "figure18_german": 1000,
    "figure19_adult": 2000,
}


def _case_config() -> CauSumXConfig:
    return CauSumXConfig(
        sample_size=None, min_group_size=10,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=10,
                                       significance_level=0.05,
                                       max_values_per_attribute=10),
    )


def _run(benchmark, name: str):
    def run():
        summary, text = run_case_study(name, n=CASE_SIZES[name], seed=0,
                                       config=_case_config())
        rows = []
        for pattern in summary.sorted_by_weight():
            rows.append({
                "grouping": repr(pattern.grouping_pattern),
                "positive": repr(pattern.positive.pattern) if pattern.positive else None,
                "positive_effect": round(pattern.positive.cate, 2) if pattern.positive else None,
                "negative": repr(pattern.negative.pattern) if pattern.negative else None,
                "negative_effect": round(pattern.negative.cate, 2) if pattern.negative else None,
                "groups_covered": len(pattern.covered_groups),
            })
        return rows, text, summary

    rows, text, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference=name,
                coverage=summary.coverage,
                total_explainability=summary.total_explainability)
    print(text)
    return summary


def test_figure2_stackoverflow_summary(benchmark):
    summary = _run(benchmark, "figure2_stackoverflow")
    assert summary.coverage == 1.0
    assert all(p.positive.cate > 0 for p in summary if p.positive)
    assert all(p.negative.cate < 0 for p in summary if p.negative)


def test_figure6_sensitive_attributes_summary(benchmark):
    summary = _run(benchmark, "figure6_stackoverflow_sensitive")
    allowed = {"Gender", "Ethnicity", "AgeBand"}
    for pattern in summary:
        if pattern.positive:
            assert set(pattern.positive.pattern.attributes) <= allowed
        if pattern.negative:
            assert set(pattern.negative.pattern.attributes) <= allowed


def test_figure7_accidents_summary(benchmark):
    summary = _run(benchmark, "figure7_accidents")
    assert summary.coverage == 1.0


def test_figure18_german_summary(benchmark):
    summary = _run(benchmark, "figure18_german")
    assert all(len(p.covered_groups) == 1 for p in summary)


def test_figure19_adult_summary(benchmark):
    summary = _run(benchmark, "figure19_adult")
    assert len(summary) >= 1
