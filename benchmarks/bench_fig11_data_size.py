"""Figure 11 — runtime vs dataset size (Adult-like and CPS-like datasets)."""

from conftest import bench_config, record_rows

from repro.experiments import runtime_vs_data_size


def test_fig11_adult_runtime_vs_size(benchmark, adult_bundle):
    def run():
        return runtime_vs_data_size(adult_bundle, sizes=[500, 1000, 2000],
                                    config=bench_config())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 11(a)")


def test_fig11_cps_runtime_vs_size(benchmark, cps_bundle):
    def run():
        return runtime_vs_data_size(cps_bundle, sizes=[1000, 2000, 4000],
                                    config=bench_config(sample_size=2000))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 11(b)",
                note="sampling optimisation capped at 2000 tuples as in the paper's 1M cap")
