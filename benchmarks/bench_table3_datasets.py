"""Table 3 — dataset statistics (tuples, attributes, max values per attribute,
number of grouping patterns)."""

from conftest import record_rows

from repro.mining import mine_grouping_patterns
from repro.sql import AggregateView


def test_table3_dataset_statistics(benchmark, bundles):
    def build_table3():
        rows = []
        for name, bundle in bundles.items():
            view = AggregateView(bundle.table, bundle.query)
            groupings = mine_grouping_patterns(
                view, bundle.grouping_attributes or [], min_support=0.1,
                include_singleton_groups=not bundle.grouping_attributes)
            stats = bundle.describe()
            stats["grouping_patterns"] = len(groupings)
            stats["groups_in_view"] = view.m
            rows.append(stats)
        return rows

    rows = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Table 3")
