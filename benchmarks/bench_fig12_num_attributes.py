"""Figure 12 — runtime vs number of attributes (SO-like and Accidents-like datasets)."""

from conftest import bench_config, record_rows

from repro.experiments import runtime_vs_attributes


def test_fig12_stackoverflow_runtime_vs_attributes(benchmark, so_bundle):
    def run():
        return runtime_vs_attributes(so_bundle, attribute_counts=[2, 4, 6, 8],
                                     config=bench_config())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 12(a)")


def test_fig12_accidents_runtime_vs_attributes(benchmark, accidents_bundle):
    def run():
        return runtime_vs_attributes(accidents_bundle, attribute_counts=[2, 4, 6, 8],
                                     config=bench_config(theta=1.0))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figure 12(b)")
