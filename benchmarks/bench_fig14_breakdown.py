"""Figures 14/20 — per-step runtime breakdown of the CauSumX algorithm."""

from conftest import bench_config, record_rows

from repro.core import CauSumX


def test_fig14_runtime_breakdown(benchmark, bundles):
    config = bench_config()

    def run():
        rows = []
        for name in ("german", "adult", "stackoverflow", "accidents"):
            bundle = bundles[name]
            cfg = config.with_overrides(include_singleton_groups=(name == "german"),
                                        theta=0.5 if name == "german" else config.theta)
            summary = CauSumX(bundle.table, bundle.dag, cfg).explain(
                bundle.query,
                grouping_attributes=bundle.grouping_attributes,
                treatment_attributes=bundle.treatment_attributes)
            total = sum(summary.timings.values()) or 1.0
            rows.append({
                "dataset": name,
                **{step: round(seconds, 3) for step, seconds in summary.timings.items()},
                "treatment_share": round(summary.timings["treatment_patterns"] / total, 3),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows, paper_reference="Figures 14/20",
                expected_shape="treatment-pattern mining dominates total runtime")
